// Package discover mines currency constraints and constant CFDs from
// (possibly dirty) data, the extension sketched in the paper's Section III
// Remark (2) and Section VII: "automated methods can be developed for
// discovering currency constraints from (possibly dirty) data. With certain
// quality metric in place, the constraints discovered can be as accurate as
// those manually designed."
//
// Three constraint families are mined:
//
//   - value-transition constraints (the ϕ1/ϕ2 shape): across entities, if
//     value a of attribute A is repeatedly observed strictly before value b
//     — evidenced by explicit currency-order edges or by a designated
//     monotone reference attribute — and (essentially) never the other way,
//     emit "t1[A]=a & t2[A]=b → t1 ≺_A t2";
//   - monotone counters (the ϕ4 shape): numeric attributes whose order
//     agrees with the evidence wherever both are defined;
//   - constant CFDs (the ψ shape): X→B value patterns that hold with enough
//     support and confidence across all tuples, mined per attribute pair.
//
// Discovery never requires clean data: support/confidence thresholds play
// the quality-metric role the paper refers to.
package discover

import (
	"fmt"
	"sort"

	"conflictres/internal/constraint"
	"conflictres/internal/model"
	"conflictres/internal/relation"
)

// Evidence is one observed "older tuple, newer tuple" pair within an entity.
type Evidence struct {
	Entity   *model.TemporalInstance
	Old, New relation.TupleID
}

// Options tunes the miner.
type Options struct {
	// MinSupport is the minimum number of entities in which a transition
	// must be observed (default 2).
	MinSupport int
	// MaxViolationRate is the fraction of counter-evidence tolerated before
	// a candidate is dropped (default 0 — strict).
	MaxViolationRate float64
	// MinCFDSupport is the minimum number of tuples matching a CFD pattern
	// (default 3); MinCFDConfidence the required fraction of matching
	// tuples agreeing on the consequent (default 0.95).
	MinCFDSupport    int
	MinCFDConfidence float64
}

func (o Options) withDefaults() Options {
	if o.MinSupport <= 0 {
		o.MinSupport = 2
	}
	if o.MinCFDSupport <= 0 {
		o.MinCFDSupport = 3
	}
	if o.MinCFDConfidence <= 0 {
		o.MinCFDConfidence = 0.95
	}
	return o
}

// Transitions mines ϕ1-style constant-pair currency constraints for one
// attribute from order evidence collected across entities.
func Transitions(sch *relation.Schema, attr relation.Attr, ev []Evidence, opts Options) []constraint.Currency {
	opts = opts.withDefaults()
	type pair struct{ a, b string }
	forward := map[pair]int{}
	for _, e := range ev {
		v1 := e.Entity.Inst.Value(e.Old, attr)
		v2 := e.Entity.Inst.Value(e.New, attr)
		if v1.IsNull() || v2.IsNull() || relation.Equal(v1, v2) {
			continue
		}
		forward[pair{v1.String(), v2.String()}]++
	}
	var out []constraint.Currency
	var keys []pair
	for p := range forward {
		keys = append(keys, p)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	for _, p := range keys {
		supp := forward[p]
		if supp < opts.MinSupport {
			continue
		}
		counter := forward[pair{p.b, p.a}]
		if float64(counter) > opts.MaxViolationRate*float64(supp) {
			continue // seen both directions: not a transition rule
		}
		out = append(out, constraint.Currency{
			Body: []constraint.Pred{
				constraint.ComparePred(constraint.AttrOperand(constraint.T1, attr),
					constraint.OpEq, mustParseOperand(p.a)),
				constraint.ComparePred(constraint.AttrOperand(constraint.T2, attr),
					constraint.OpEq, mustParseOperand(p.b)),
			},
			Target: attr,
		})
	}
	return out
}

func mustParseOperand(s string) constraint.Operand {
	v, err := relation.ParseValue(s)
	if err != nil {
		v = relation.String(s)
	}
	return constraint.ConstOperand(v)
}

// MonotoneCounters mines ϕ4-style constraints: numeric attributes whose
// values strictly increase along every piece of order evidence.
func MonotoneCounters(sch *relation.Schema, ev []Evidence, opts Options) []constraint.Currency {
	opts = opts.withDefaults()
	n := sch.Len()
	agree := make([]int, n)
	violate := make([]int, n)
	numeric := make([]bool, n)
	for i := range numeric {
		numeric[i] = true
	}
	for _, e := range ev {
		for a := 0; a < n; a++ {
			v1 := e.Entity.Inst.Value(e.Old, relation.Attr(a))
			v2 := e.Entity.Inst.Value(e.New, relation.Attr(a))
			if v1.IsNull() || v2.IsNull() {
				continue
			}
			if v1.Kind() == relation.KindString || v2.Kind() == relation.KindString {
				numeric[a] = false
				continue
			}
			switch relation.Compare(v1, v2) {
			case -1:
				agree[a]++
			case 1:
				violate[a]++
			}
		}
	}
	var out []constraint.Currency
	for a := 0; a < n; a++ {
		if !numeric[a] || agree[a] < opts.MinSupport || relation.IsReservedColumn(sch.Name(relation.Attr(a))) {
			continue
		}
		if float64(violate[a]) > opts.MaxViolationRate*float64(agree[a]) {
			continue
		}
		attr := relation.Attr(a)
		out = append(out, constraint.Currency{
			Body: []constraint.Pred{constraint.ComparePred(
				constraint.AttrOperand(constraint.T1, attr), constraint.OpLt,
				constraint.AttrOperand(constraint.T2, attr))},
			Target: attr,
		})
	}
	return out
}

// CFDs mines single-attribute constant CFDs X→B across a tuple collection:
// for each attribute pair (X, B) and each X-value with enough support, if at
// least MinCFDConfidence of the matching tuples agree on one B-value, the
// pattern is emitted.
func CFDs(sch *relation.Schema, tuples []relation.Tuple, opts Options) []constraint.CFD {
	opts = opts.withDefaults()
	n := sch.Len()
	var out []constraint.CFD
	for x := 0; x < n; x++ {
		// Provenance tags are metadata, not entity values: patterns on the
		// reserved source column would be spurious CFDs.
		if relation.IsReservedColumn(sch.Name(relation.Attr(x))) {
			continue
		}
		for b := 0; b < n; b++ {
			if x == b || relation.IsReservedColumn(sch.Name(relation.Attr(b))) {
				continue
			}
			// histogram: X-value → (B-value → count)
			hist := map[string]map[string]int{}
			values := map[string]relation.Value{}
			for _, t := range tuples {
				vx, vb := t[x], t[b]
				if vx.IsNull() || vb.IsNull() {
					continue
				}
				kx, kb := vx.Quote(), vb.Quote()
				if hist[kx] == nil {
					hist[kx] = map[string]int{}
				}
				hist[kx][kb]++
				values[kx] = vx
				values[kb] = vb
			}
			var keys []string
			for k := range hist {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, kx := range keys {
				counts := hist[kx]
				total, bestK, bestC := 0, "", 0
				for kb, c := range counts {
					total += c
					if c > bestC || (c == bestC && kb < bestK) {
						bestK, bestC = kb, c
					}
				}
				if total < opts.MinCFDSupport {
					continue
				}
				if float64(bestC) < opts.MinCFDConfidence*float64(total) {
					continue
				}
				out = append(out, constraint.CFD{
					X:  []relation.Attr{relation.Attr(x)},
					PX: []relation.Value{values[kx]},
					B:  relation.Attr(b),
					VB: values[bestK],
				})
			}
		}
	}
	return out
}

// FromDataset runs the full miner over a set of temporal instances: order
// evidence is taken from their explicit edges, and CFDs from the pooled
// tuples. It returns discovered currency constraints and CFDs ready to drop
// into a specification.
func FromDataset(sch *relation.Schema, tis []*model.TemporalInstance, opts Options) ([]constraint.Currency, []constraint.CFD, error) {
	if len(tis) == 0 {
		return nil, nil, fmt.Errorf("discover: no instances")
	}
	var ev []Evidence
	var pool []relation.Tuple
	for _, ti := range tis {
		if ti.Inst.Schema().Len() != sch.Len() {
			return nil, nil, fmt.Errorf("discover: schema mismatch")
		}
		for _, e := range ti.Edges {
			ev = append(ev, Evidence{Entity: ti, Old: e.T1, New: e.T2})
		}
		for _, id := range ti.Inst.TupleIDs() {
			pool = append(pool, ti.Inst.Tuple(id))
		}
	}
	var sigma []constraint.Currency
	for a := 0; a < sch.Len(); a++ {
		if relation.IsReservedColumn(sch.Name(relation.Attr(a))) {
			continue
		}
		sigma = append(sigma, Transitions(sch, relation.Attr(a), ev, opts)...)
	}
	sigma = append(sigma, MonotoneCounters(sch, ev, opts)...)
	gamma := CFDs(sch, pool, opts)
	return sigma, gamma, nil
}
