package discover

import (
	"testing"

	"conflictres/internal/core"
	"conflictres/internal/encode"
	"conflictres/internal/fixtures"
	"conflictres/internal/model"
	"conflictres/internal/relation"
)

// historyInstance builds a temporal instance whose tuples are ordered by
// explicit edges (tuple i ≼ tuple i+1 on every attribute), the shape a
// change-log export would have.
func historyInstance(sch *relation.Schema, rows []relation.Tuple) *model.TemporalInstance {
	in := relation.NewInstance(sch)
	for _, r := range rows {
		in.MustAdd(r)
	}
	ti := model.NewTemporal(in)
	for a := 0; a < sch.Len(); a++ {
		for i := 0; i+1 < in.Len(); i++ {
			ti.MustOrder(relation.Attr(a), relation.TupleID(i), relation.TupleID(i+1))
		}
	}
	return ti
}

func TestTransitionsMined(t *testing.T) {
	sch := relation.MustSchema("status", "kids")
	s := relation.String
	mk := func(status string, kids int64) relation.Tuple {
		return relation.Tuple{s(status), relation.Int(kids)}
	}
	tis := []*model.TemporalInstance{
		historyInstance(sch, []relation.Tuple{mk("working", 0), mk("retired", 1)}),
		historyInstance(sch, []relation.Tuple{mk("working", 2), mk("retired", 3)}),
		historyInstance(sch, []relation.Tuple{mk("retired", 1), mk("deceased", 1)}),
		historyInstance(sch, []relation.Tuple{mk("retired", 0), mk("deceased", 0)}),
	}
	sigma, _, err := FromDataset(sch, tis, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, c := range sigma {
		texts = append(texts, c.Format(sch))
	}
	want := []string{
		`t1[status] = "working" & t2[status] = "retired" -> t1 <[status] t2`,
		`t1[status] = "retired" & t2[status] = "deceased" -> t1 <[status] t2`,
		`t1[kids] < t2[kids] -> t1 <[kids] t2`,
	}
	for _, w := range want {
		found := false
		for _, g := range texts {
			if g == w {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("missing %s\nmined: %v", w, texts)
		}
	}
}

func TestTransitionsRejectBidirectional(t *testing.T) {
	sch := relation.MustSchema("city")
	s := relation.String
	tis := []*model.TemporalInstance{
		historyInstance(sch, []relation.Tuple{{s("NY")}, {s("LA")}}),
		historyInstance(sch, []relation.Tuple{{s("LA")}, {s("NY")}}),
		historyInstance(sch, []relation.Tuple{{s("NY")}, {s("LA")}}),
	}
	sigma, _, err := FromDataset(sch, tis, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sigma) != 0 {
		var texts []string
		for _, c := range sigma {
			texts = append(texts, c.Format(sch))
		}
		t.Fatalf("people move both ways; no transition rule should survive: %v", texts)
	}
}

func TestMonotoneRejectsDecreasing(t *testing.T) {
	sch := relation.MustSchema("balance")
	mk := func(v int64) relation.Tuple { return relation.Tuple{relation.Int(v)} }
	tis := []*model.TemporalInstance{
		historyInstance(sch, []relation.Tuple{mk(10), mk(20)}),
		historyInstance(sch, []relation.Tuple{mk(30), mk(5)}), // balances drop too
	}
	sigma, _, err := FromDataset(sch, tis, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sigma) != 0 {
		t.Fatalf("non-monotone attribute must not yield a counter rule: %d", len(sigma))
	}
}

func TestCFDsMined(t *testing.T) {
	sch := relation.MustSchema("AC", "city")
	s := relation.String
	var tuples []relation.Tuple
	for i := 0; i < 5; i++ {
		tuples = append(tuples, relation.Tuple{s("212"), s("NY")})
		tuples = append(tuples, relation.Tuple{s("213"), s("LA")})
	}
	// One dirty tuple below the confidence threshold.
	tuples = append(tuples, relation.Tuple{s("212"), s("Boston")})
	got := CFDs(sch, tuples, Options{MinCFDSupport: 3, MinCFDConfidence: 0.8})
	var texts []string
	for _, c := range got {
		texts = append(texts, c.Format(sch))
	}
	wantNY := `AC = "212" => city = "NY"`
	found := false
	for _, g := range texts {
		if g == wantNY {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing %s in %v", wantNY, texts)
	}
	// The dirty direction city→AC for Boston must not appear (support 1).
	for _, g := range texts {
		if g == `city = "Boston" => AC = "212"` {
			t.Fatalf("low-support pattern mined: %v", texts)
		}
	}
}

func TestDiscoveredConstraintsDriveResolution(t *testing.T) {
	// Mine constraints from synthetic ordered histories, then resolve the
	// paper's Edith instance with them: the pipeline must reach the same
	// status/kids conclusions as the hand-written rules.
	sch := fixtures.PersonSchema()
	s := relation.String
	mk := func(status string, kids int64) relation.Tuple {
		t := relation.NewTuple(sch)
		t[sch.MustAttr("name")] = s("h")
		t[sch.MustAttr("status")] = s(status)
		t[sch.MustAttr("kids")] = relation.Int(kids)
		return t
	}
	var tis []*model.TemporalInstance
	for i := 0; i < 3; i++ {
		tis = append(tis, historyInstance(sch, []relation.Tuple{
			mk("working", 0), mk("retired", 1), mk("deceased", 2),
		}))
	}
	sigma, _, err := FromDataset(sch, tis, Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := model.NewSpec(model.NewTemporal(fixtures.EdithInstance()), sigma, nil)
	enc := encode.Build(spec, encode.Options{})
	od, ok := core.DeduceOrder(enc)
	if !ok {
		t.Fatal("inconsistent")
	}
	tv := core.TrueValues(enc, od)
	if v := tv[sch.MustAttr("status")]; v.String() != "deceased" {
		t.Fatalf("status via mined rules = %v", v)
	}
	if v := tv[sch.MustAttr("kids")]; v.String() != "3" {
		t.Fatalf("kids via mined rules = %v", v)
	}
}

func TestFromDatasetErrors(t *testing.T) {
	sch := relation.MustSchema("a")
	if _, _, err := FromDataset(sch, nil, Options{}); err == nil {
		t.Fatal("no instances must fail")
	}
	other := relation.MustSchema("x", "y")
	in := relation.NewInstance(other)
	in.MustAdd(relation.Tuple{relation.String("1"), relation.String("2")})
	if _, _, err := FromDataset(sch, []*model.TemporalInstance{model.NewTemporal(in)}, Options{}); err == nil {
		t.Fatal("schema mismatch must fail")
	}
}

func TestMinSupportHonoured(t *testing.T) {
	sch := relation.MustSchema("status")
	s := relation.String
	tis := []*model.TemporalInstance{
		historyInstance(sch, []relation.Tuple{{s("a")}, {s("b")}}),
	}
	sigma, _, _ := FromDataset(sch, tis, Options{MinSupport: 2})
	if len(sigma) != 0 {
		t.Fatal("single observation must not clear MinSupport=2")
	}
	sigma, _, _ = FromDataset(sch, tis, Options{MinSupport: 1})
	if len(sigma) != 1 {
		t.Fatalf("MinSupport=1 should mine the transition, got %d", len(sigma))
	}
}
