package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteDIMACS serializes the formula in the standard DIMACS CNF format:
// variables are 1-based, negative numbers are negated literals, clauses end
// with 0.
func (c *CNF) WriteDIMACS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p cnf %d %d\n", c.NVars, len(c.Clauses))
	for _, cl := range c.Clauses {
		for _, l := range cl {
			v := int(l.Var()) + 1
			if l.Neg() {
				v = -v
			}
			fmt.Fprintf(bw, "%d ", v)
		}
		fmt.Fprintln(bw, "0")
	}
	return bw.Flush()
}

// ReadDIMACS parses a DIMACS CNF file. Comment lines ("c ...") are skipped;
// the problem line ("p cnf V C") is honoured for the variable count but the
// clause count is taken from the actual content. Clauses may span lines.
func ReadDIMACS(r io.Reader) (*CNF, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 1<<16), 1<<26)
	c := NewCNF(0)
	var cur []Lit
	sawProblem := false
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("sat: bad problem line %q", line)
			}
			nv, err := strconv.Atoi(fields[2])
			if err != nil || nv < 0 {
				return nil, fmt.Errorf("sat: bad variable count in %q", line)
			}
			c.NVars = nv
			sawProblem = true
			continue
		}
		for _, tok := range strings.Fields(line) {
			n, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("sat: bad literal %q", tok)
			}
			if n == 0 {
				c.Add(cur...)
				cur = cur[:0]
				continue
			}
			v := n
			neg := false
			if v < 0 {
				v, neg = -v, true
			}
			cur = append(cur, MkLit(Var(v-1), neg))
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("sat: %w", err)
	}
	if len(cur) > 0 {
		return nil, fmt.Errorf("sat: unterminated clause at end of input")
	}
	if !sawProblem {
		return nil, fmt.Errorf("sat: missing problem line")
	}
	return c, nil
}
