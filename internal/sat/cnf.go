package sat

import (
	"fmt"
	"strings"
)

// cnfBlockLits is the chunk size of the CNF literal arena. Formulas in this
// module run from hundreds to a few hundred thousand literals; 16Ki-literal
// (64 KiB) blocks keep the block count small without over-reserving for tiny
// formulas.
const cnfBlockLits = 1 << 14

// CNF is a plain clause-set container, decoupled from any solver instance so
// it can be copied, filtered and re-solved cheaply. The encode package
// produces CNF values; core algorithms load them into Solvers.
//
// Clause literals are stored in a chunked arena: Add copies each clause into
// the current block instead of allocating a fresh slice per clause, and
// Reset rewinds the arena for reuse so one CNF value can carry thousands of
// formulas over its lifetime without reallocating. Clauses remain exposed as
// an ordinary [][]Lit — the sub-slices alias the arena and must not be
// mutated or retained across Reset.
type CNF struct {
	NVars   int
	Clauses [][]Lit

	blocks [][]Lit // literal arena; blocks[cur] is being filled
	cur    int
}

// NewCNF creates an empty formula over n variables.
func NewCNF(n int) *CNF { return &CNF{NVars: n} }

// Reset empties the formula (NVars 0, no clauses) while keeping the clause
// index and literal arena allocated for reuse. Slices previously obtained
// from Clauses are invalidated.
func (c *CNF) Reset() {
	c.NVars = 0
	c.Clauses = c.Clauses[:0]
	for i := range c.blocks {
		c.blocks[i] = c.blocks[i][:0]
	}
	c.cur = 0
}

// alloc returns an empty arena slice with capacity for n more literals.
func (c *CNF) alloc(n int) []Lit {
	for c.cur < len(c.blocks) {
		b := c.blocks[c.cur]
		if cap(b)-len(b) >= n {
			return b[len(b):len(b):cap(b)]
		}
		c.cur++
	}
	size := cnfBlockLits
	if n > size {
		size = n
	}
	c.blocks = append(c.blocks, make([]Lit, 0, size))
	c.cur = len(c.blocks) - 1
	return c.blocks[c.cur]
}

// Add appends a clause (copied into the arena).
func (c *CNF) Add(lits ...Lit) {
	for _, l := range lits {
		if int(l.Var()) >= c.NVars {
			c.NVars = int(l.Var()) + 1
		}
	}
	cl := append(c.alloc(len(lits)), lits...)
	c.blocks[c.cur] = c.blocks[c.cur][:len(c.blocks[c.cur])+len(cl)]
	c.Clauses = append(c.Clauses, cl[:len(cl):len(cl)])
}

// Clone deep-copies the formula. The copy's literals live in one flat block,
// independent of the receiver's arena.
func (c *CNF) Clone() *CNF {
	flat := make([]Lit, 0, c.NumLiterals())
	cp := &CNF{NVars: c.NVars, Clauses: make([][]Lit, len(c.Clauses))}
	for i, cl := range c.Clauses {
		start := len(flat)
		flat = append(flat, cl...)
		cp.Clauses[i] = flat[start:len(flat):len(flat)]
	}
	cp.blocks = [][]Lit{flat}
	cp.cur = 0
	return cp
}

// LoadInto feeds all clauses to a solver, allocating variables as needed.
// It returns false if the solver became unsatisfiable while loading.
func (c *CNF) LoadInto(s *Solver) bool {
	for s.NumVars() < c.NVars {
		s.NewVar()
	}
	ok := true
	for _, cl := range c.Clauses {
		if !s.AddClause(cl...) {
			ok = false
		}
	}
	return ok
}

// AppendInto feeds only Clauses[from:] to a solver that already holds the
// earlier prefix, allocating variables as needed. It is the delta-loading
// half of incremental sessions: after the formula grows (Se ⊕ Ot), only the
// new clauses are attached, preserving the solver's learned-clause state.
// It returns false if the solver is (or became) unsatisfiable.
func (c *CNF) AppendInto(s *Solver, from int) bool {
	for s.NumVars() < c.NVars {
		s.NewVar()
	}
	if from < 0 {
		from = 0
	}
	ok := s.Okay()
	for i := from; i < len(c.Clauses); i++ {
		if !s.AddClause(c.Clauses[i]...) {
			ok = false
		}
	}
	return ok
}

// Solver builds a fresh solver loaded with the formula.
func (c *CNF) Solver() *Solver {
	s := New()
	c.LoadInto(s)
	return s
}

// NumLiterals returns the total literal count across clauses.
func (c *CNF) NumLiterals() int {
	n := 0
	for _, cl := range c.Clauses {
		n += len(cl)
	}
	return n
}

// Eval reports whether the assignment (indexed by variable) satisfies every
// clause.
func (c *CNF) Eval(assign []bool) bool {
	for _, cl := range c.Clauses {
		sat := false
		for _, l := range cl {
			if assign[l.Var()] != l.Neg() {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// String renders the formula in a compact DIMACS-like form; for debugging.
func (c *CNF) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "p cnf %d %d\n", c.NVars, len(c.Clauses))
	for _, cl := range c.Clauses {
		for i, l := range cl {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(l.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SolveBrute decides satisfiability by exhaustive enumeration; it is the
// reference oracle for property tests and only usable for small NVars
// (it panics above 25 variables). It returns the status and, when
// satisfiable, a witness assignment.
func (c *CNF) SolveBrute() (Status, []bool) {
	if c.NVars > 25 {
		panic("sat: SolveBrute limited to 25 variables")
	}
	n := c.NVars
	assign := make([]bool, n)
	for mask := 0; mask < 1<<uint(n); mask++ {
		for i := 0; i < n; i++ {
			assign[i] = mask&(1<<uint(i)) != 0
		}
		if c.Eval(assign) {
			return StatusSat, append([]bool(nil), assign...)
		}
	}
	return StatusUnsat, nil
}
