package sat

import (
	"fmt"
	"strings"
)

// CNF is a plain clause-set container, decoupled from any solver instance so
// it can be copied, filtered and re-solved cheaply. The encode package
// produces CNF values; core algorithms load them into Solvers.
type CNF struct {
	NVars   int
	Clauses [][]Lit
}

// NewCNF creates an empty formula over n variables.
func NewCNF(n int) *CNF { return &CNF{NVars: n} }

// Add appends a clause (copied).
func (c *CNF) Add(lits ...Lit) {
	for _, l := range lits {
		if int(l.Var()) >= c.NVars {
			c.NVars = int(l.Var()) + 1
		}
	}
	c.Clauses = append(c.Clauses, append([]Lit(nil), lits...))
}

// Clone deep-copies the formula.
func (c *CNF) Clone() *CNF {
	cp := &CNF{NVars: c.NVars, Clauses: make([][]Lit, len(c.Clauses))}
	for i, cl := range c.Clauses {
		cp.Clauses[i] = append([]Lit(nil), cl...)
	}
	return cp
}

// LoadInto feeds all clauses to a solver, allocating variables as needed.
// It returns false if the solver became unsatisfiable while loading.
func (c *CNF) LoadInto(s *Solver) bool {
	for s.NumVars() < c.NVars {
		s.NewVar()
	}
	ok := true
	for _, cl := range c.Clauses {
		if !s.AddClause(cl...) {
			ok = false
		}
	}
	return ok
}

// AppendInto feeds only Clauses[from:] to a solver that already holds the
// earlier prefix, allocating variables as needed. It is the delta-loading
// half of incremental sessions: after the formula grows (Se ⊕ Ot), only the
// new clauses are attached, preserving the solver's learned-clause state.
// It returns false if the solver is (or became) unsatisfiable.
func (c *CNF) AppendInto(s *Solver, from int) bool {
	for s.NumVars() < c.NVars {
		s.NewVar()
	}
	if from < 0 {
		from = 0
	}
	ok := s.Okay()
	for i := from; i < len(c.Clauses); i++ {
		if !s.AddClause(c.Clauses[i]...) {
			ok = false
		}
	}
	return ok
}

// Solver builds a fresh solver loaded with the formula.
func (c *CNF) Solver() *Solver {
	s := New()
	c.LoadInto(s)
	return s
}

// NumLiterals returns the total literal count across clauses.
func (c *CNF) NumLiterals() int {
	n := 0
	for _, cl := range c.Clauses {
		n += len(cl)
	}
	return n
}

// Eval reports whether the assignment (indexed by variable) satisfies every
// clause.
func (c *CNF) Eval(assign []bool) bool {
	for _, cl := range c.Clauses {
		sat := false
		for _, l := range cl {
			if assign[l.Var()] != l.Neg() {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// String renders the formula in a compact DIMACS-like form; for debugging.
func (c *CNF) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "p cnf %d %d\n", c.NVars, len(c.Clauses))
	for _, cl := range c.Clauses {
		for i, l := range cl {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(l.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SolveBrute decides satisfiability by exhaustive enumeration; it is the
// reference oracle for property tests and only usable for small NVars
// (it panics above 25 variables). It returns the status and, when
// satisfiable, a witness assignment.
func (c *CNF) SolveBrute() (Status, []bool) {
	if c.NVars > 25 {
		panic("sat: SolveBrute limited to 25 variables")
	}
	n := c.NVars
	assign := make([]bool, n)
	for mask := 0; mask < 1<<uint(n); mask++ {
		for i := 0; i < n; i++ {
			assign[i] = mask&(1<<uint(i)) != 0
		}
		if c.Eval(assign) {
			return StatusSat, append([]bool(nil), assign...)
		}
	}
	return StatusUnsat, nil
}
