package sat

import (
	"sort"
)

// clauseRef indexes a clause in the solver's arena; noClause means "none".
type clauseRef int32

const noClause clauseRef = -1

// clause is a disjunction of literals. lits[0] and lits[1] are the watched
// positions (for clauses of length ≥ 2). Clauses live in the solver's arena
// and are addressed by clauseRef, never by pointer across mutations.
type clause struct {
	lits   []Lit
	act    float64
	learnt bool
}

// solverBlockLits is the chunk size of the problem-clause literal arena.
const solverBlockLits = 1 << 14

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
// A Solver is not safe for concurrent use.
//
// Clause storage is arena-backed: clause headers live in one growable slice
// indexed by clauseRef, problem-clause literals in chunked blocks, and the
// watch lists are flat []clauseRef per literal. Reset rewinds everything for
// reuse, so one solver instance can serve thousands of formulas (a pooled
// resolve pipeline resolving a dataset entity-by-entity) without
// reallocating trail, watch or activity storage.
type Solver struct {
	arena   []clause
	clauses []clauseRef
	learnts []clauseRef
	watches [][]clauseRef // indexed by Lit; clauses in which Lit is watched

	litBlocks [][]Lit // literal arena for problem clauses
	litCur    int

	assigns  []lbool // per var
	polarity []bool  // saved phase: true = last assigned false
	activity []float64
	varInc   float64
	claInc   float64
	order    *varHeap

	trail    []Lit
	trailLim []int
	reason   []clauseRef
	level    []int
	qhead    int

	seen     []bool
	addBuf   []Lit // AddClause scratch
	ok       bool  // false once a top-level contradiction is derived
	model    []bool
	haveModl bool

	// Stats counts solver work; useful for benchmarks and tuning. The
	// counters are cumulative across Reset — they describe the solver's
	// whole lifetime, so pooled reuse never loses work accounting. Callers
	// that want per-formula numbers subtract a snapshot taken at load time.
	Stats Stats

	// MaxConflicts bounds the total conflicts per Solve call; 0 means
	// unbounded. When exceeded, Solve returns StatusUnknown.
	MaxConflicts int64
}

// Stats aggregates solver counters across a Solver's lifetime.
type Stats struct {
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Restarts     int64
	Learnt       int64
	// Solves counts Solve calls; incremental callers (resolution sessions)
	// read it to report how many queries one solver instance amortized.
	Solves int64
}

// New creates an empty solver.
func New() *Solver {
	s := &Solver{varInc: 1, claInc: 1, ok: true}
	s.order = newVarHeap(&s.activity)
	return s
}

// Reset returns the solver to the empty state of New while keeping every
// allocation — clause arena, literal blocks, watch lists, trail, activity
// and heap storage — for reuse by the next formula. MaxConflicts is zeroed
// (it is per-formula configuration); Stats accumulates across resets so
// pooled reuse keeps lifetime work accounting without snapshot workarounds.
func (s *Solver) Reset() {
	s.arena = s.arena[:0]
	s.clauses = s.clauses[:0]
	s.learnts = s.learnts[:0]
	for i := range s.litBlocks {
		s.litBlocks[i] = s.litBlocks[i][:0]
	}
	s.litCur = 0
	// Per-variable storage shrinks to zero length; NewVar re-initializes
	// entries as it grows back into the retained capacity.
	s.assigns = s.assigns[:0]
	s.polarity = s.polarity[:0]
	s.activity = s.activity[:0]
	s.reason = s.reason[:0]
	s.level = s.level[:0]
	s.seen = s.seen[:0]
	s.watches = s.watches[:0]
	s.trail = s.trail[:0]
	s.trailLim = s.trailLim[:0]
	s.qhead = 0
	s.order.reset()
	s.varInc, s.claInc = 1, 1
	s.ok = true
	s.haveModl = false
	s.MaxConflicts = 0
}

// NewVar allocates a fresh variable and returns it.
func (s *Solver) NewVar() Var {
	v := Var(len(s.assigns))
	s.assigns = append(s.assigns, lUndef)
	s.polarity = append(s.polarity, true)
	s.activity = append(s.activity, 0)
	s.reason = append(s.reason, noClause)
	s.level = append(s.level, 0)
	s.seen = append(s.seen, false)
	// Watch lists retained across Reset keep their capacity: grow by
	// reslicing (which preserves the stored inner slices) and truncate the
	// reused entries, instead of appending nil over them.
	if n := len(s.watches) + 2; n <= cap(s.watches) {
		s.watches = s.watches[:n]
		s.watches[n-2] = s.watches[n-2][:0]
		s.watches[n-1] = s.watches[n-1][:0]
	} else {
		s.watches = append(s.watches, nil, nil)
	}
	s.order.insert(v)
	return v
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NumClauses returns the number of problem clauses currently stored.
func (s *Solver) NumClauses() int { return len(s.clauses) }

func (s *Solver) value(l Lit) lbool {
	v := s.assigns[l.Var()]
	if l.Neg() {
		return -v
	}
	return v
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// allocLits returns an arena slice holding a copy of lits (problem clauses
// only; learnt clauses own their literals so reduceDB can release them).
func (s *Solver) allocLits(lits []Lit) []Lit {
	n := len(lits)
	for s.litCur < len(s.litBlocks) {
		b := s.litBlocks[s.litCur]
		if cap(b)-len(b) >= n {
			cl := append(b[len(b):len(b):cap(b)], lits...)
			s.litBlocks[s.litCur] = b[:len(b)+n]
			return cl[:n:n]
		}
		s.litCur++
	}
	size := solverBlockLits
	if n > size {
		size = n
	}
	block := make([]Lit, 0, size)
	cl := append(block, lits...)
	s.litBlocks = append(s.litBlocks, cl)
	s.litCur = len(s.litBlocks) - 1
	return cl[:n:n]
}

// newClause stores a clause in the arena and returns its reference.
func (s *Solver) newClause(lits []Lit, learnt bool) clauseRef {
	var stored []Lit
	if learnt {
		stored = append([]Lit(nil), lits...)
	} else {
		stored = s.allocLits(lits)
	}
	s.arena = append(s.arena, clause{lits: stored, learnt: learnt})
	return clauseRef(len(s.arena) - 1)
}

// AddClause adds a clause. It returns false if the solver is already in an
// unsatisfiable state (including becoming unsatisfiable because of this
// clause). Duplicate literals are removed; tautologies are dropped; literals
// already false at level 0 are stripped. The input slice is not retained or
// mutated.
//
// AddClause is safe after Solve: every Solve call backtracks to the root
// level before returning, so clauses (and fresh variables) can be attached
// incrementally while all learned clauses — consequences of the formula so
// far, hence of any extension — are preserved. The cached model of the last
// Solve is invalidated, since the new clause may falsify it.
func (s *Solver) AddClause(lits ...Lit) bool {
	s.haveModl = false
	if !s.ok {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddClause above decision level 0")
	}
	// Sort/dedup; detect tautology and strip level-0-false literals. The
	// scratch copy keeps the caller's slice intact; insertion sort beats
	// sort.Slice on the short clauses that dominate here.
	ls := append(s.addBuf[:0], lits...)
	s.addBuf = ls
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && ls[j] < ls[j-1]; j-- {
			ls[j], ls[j-1] = ls[j-1], ls[j]
		}
	}
	out := ls[:0]
	var prev Lit = -1
	for _, l := range ls {
		if l == prev {
			continue
		}
		if prev >= 0 && l == prev.Not() {
			return true // tautology: x ∨ ¬x
		}
		switch s.value(l) {
		case lTrue:
			return true // already satisfied at level 0
		case lFalse:
			prev = l
			continue // drop falsified literal
		}
		out = append(out, l)
		prev = l
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], noClause)
		s.ok = s.propagate() == noClause
		return s.ok
	}
	cr := s.newClause(out, false)
	s.attach(cr)
	s.clauses = append(s.clauses, cr)
	return true
}

func (s *Solver) attach(cr clauseRef) {
	c := &s.arena[cr]
	s.watches[c.lits[0]] = append(s.watches[c.lits[0]], cr)
	s.watches[c.lits[1]] = append(s.watches[c.lits[1]], cr)
}

func (s *Solver) uncheckedEnqueue(l Lit, from clauseRef) {
	v := l.Var()
	if l.Neg() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.reason[v] = from
	s.level[v] = s.decisionLevel()
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns the conflicting clause or
// noClause.
func (s *Solver) propagate() clauseRef {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is now true
		s.qhead++
		s.Stats.Propagations++
		falseLit := p.Not()
		ws := s.watches[falseLit]
		kept := ws[:0]
	clauses:
		for ci := 0; ci < len(ws); ci++ {
			cr := ws[ci]
			c := &s.arena[cr]
			// Normalize: watched falseLit at position 1.
			if c.lits[0] == falseLit {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			// If first watch is true, clause is satisfied.
			if s.value(c.lits[0]) == lTrue {
				kept = append(kept, cr)
				continue
			}
			// Look for a new literal to watch.
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1]] = append(s.watches[c.lits[1]], cr)
					continue clauses
				}
			}
			// Clause is unit or conflicting.
			kept = append(kept, cr)
			if s.value(c.lits[0]) == lFalse {
				// Conflict: keep remaining watchers and bail.
				kept = append(kept, ws[ci+1:]...)
				s.watches[falseLit] = kept
				s.qhead = len(s.trail)
				return cr
			}
			s.uncheckedEnqueue(c.lits[0], cr)
		}
		s.watches[falseLit] = kept
	}
	return noClause
}

// analyze performs first-UIP conflict analysis. It returns the learnt clause
// (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl clauseRef) ([]Lit, int) {
	learnt := []Lit{0} // placeholder for asserting literal
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1

	for {
		// Bump and mark literals of the current reason clause.
		start := 0
		if p != -1 {
			start = 1 // skip the asserting literal position in reasons
		}
		c := &s.arena[confl]
		if c.learnt {
			s.bumpClause(c)
		}
		for i := start; i < len(c.lits); i++ {
			q := c.lits[i]
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if s.level[v] == s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Select next literal to expand from the trail.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		s.seen[v] = false
		counter--
		if counter == 0 {
			learnt[0] = p.Not()
			break
		}
		confl = s.reason[v]
	}

	// Simple clause minimization: drop literals whose reason is subsumed.
	preMin := append([]Lit(nil), learnt...)
	learnt = s.minimize(learnt)

	// Compute backtrack level: max level among learnt[1:].
	bt := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		bt = s.level[learnt[1].Var()]
	}
	for _, l := range preMin {
		s.seen[l.Var()] = false
	}
	return learnt, bt
}

// minimize removes learnt-clause literals that are implied by the remaining
// ones via their reason clauses (local minimization, non-recursive).
func (s *Solver) minimize(learnt []Lit) []Lit {
	for _, l := range learnt {
		s.seen[l.Var()] = true
	}
	out := learnt[:1]
	for _, l := range learnt[1:] {
		r := s.reason[l.Var()]
		if r == noClause {
			out = append(out, l)
			continue
		}
		redundant := true
		for _, q := range s.arena[r].lits {
			if q.Var() == l.Var() {
				continue
			}
			if !s.seen[q.Var()] && s.level[q.Var()] != 0 {
				redundant = false
				break
			}
		}
		if !redundant {
			out = append(out, l)
		}
	}
	return out
}

func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	for i := len(s.trail) - 1; i >= s.trailLim[lvl]; i-- {
		l := s.trail[i]
		v := l.Var()
		s.assigns[v] = lUndef
		s.polarity[v] = l.Neg()
		s.reason[v] = noClause
		s.order.insert(v)
	}
	s.trail = s.trail[:s.trailLim[lvl]]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVar(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.decreased(v)
}

func (s *Solver) bumpClause(c *clause) {
	c.act += s.claInc
	if c.act > 1e20 {
		for _, lc := range s.learnts {
			s.arena[lc].act *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) decayActivities() {
	s.varInc /= 0.95
	s.claInc /= 0.999
}

func (s *Solver) pickBranchVar() Var {
	for !s.order.empty() {
		v := s.order.removeMax()
		if s.assigns[v] == lUndef {
			return v
		}
	}
	return -1
}

// reduceDB halves the learnt-clause database, keeping the most active.
func (s *Solver) reduceDB() {
	sort.Slice(s.learnts, func(i, j int) bool { return s.arena[s.learnts[i]].act > s.arena[s.learnts[j]].act })
	keep := s.learnts[:0]
	locked := func(cr clauseRef) bool {
		v := s.arena[cr].lits[0].Var()
		return s.assigns[v] != lUndef && s.reason[v] == cr
	}
	for i, cr := range s.learnts {
		if i < len(s.learnts)/2 || len(s.arena[cr].lits) == 2 || locked(cr) {
			keep = append(keep, cr)
		} else {
			s.detach(cr)
			// The arena slot leaks until Reset, but the literals (the bulk)
			// are released for the garbage collector now.
			s.arena[cr].lits = nil
		}
	}
	s.learnts = keep
}

func (s *Solver) detach(cr clauseRef) {
	lits := s.arena[cr].lits
	for _, w := range []Lit{lits[0], lits[1]} {
		ws := s.watches[w]
		for i, x := range ws {
			if x == cr {
				ws[i] = ws[len(ws)-1]
				s.watches[w] = ws[:len(ws)-1]
				break
			}
		}
	}
}

// luby returns the i-th element (1-based) of the Luby restart sequence.
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (int64(1)<<k)-1 {
			return int64(1) << (k - 1)
		}
		if i < (int64(1)<<k)-1 {
			return luby(i - (int64(1) << (k - 1)) + 1)
		}
	}
}

// Solve determines satisfiability under the given assumption literals.
// With no assumptions it decides the formula itself. After StatusSat,
// Model reports the satisfying assignment.
func (s *Solver) Solve(assumptions ...Lit) Status {
	s.haveModl = false
	s.Stats.Solves++
	if !s.ok {
		return StatusUnsat
	}
	defer s.cancelUntil(0)

	var restart int64 = 1
	var totalConflicts int64
	maxLearnts := int64(len(s.clauses))/3 + 100

	for {
		budget := 100 * luby(restart)
		restart++
		st, confl := s.search(assumptions, budget, &totalConflicts, &maxLearnts)
		switch st {
		case StatusSat:
			if cap(s.model) >= len(s.assigns) {
				s.model = s.model[:len(s.assigns)]
			} else {
				s.model = make([]bool, len(s.assigns))
			}
			for i, a := range s.assigns {
				s.model[i] = a == lTrue
			}
			s.haveModl = true
			return StatusSat
		case StatusUnsat:
			if confl {
				s.ok = false // contradiction independent of assumptions
			}
			return StatusUnsat
		}
		if s.MaxConflicts > 0 && totalConflicts >= s.MaxConflicts {
			return StatusUnknown
		}
		s.Stats.Restarts++
		s.cancelUntil(0)
	}
}

// search runs CDCL until a result, restart budget exhaustion, or the global
// conflict bound. The bool result reports whether UNSAT was derived at level
// 0 (i.e. independent of assumptions).
func (s *Solver) search(assumptions []Lit, budget int64, total *int64, maxLearnts *int64) (Status, bool) {
	var conflicts int64
	for {
		confl := s.propagate()
		if confl != noClause {
			s.Stats.Conflicts++
			conflicts++
			*total++
			if s.decisionLevel() == 0 {
				return StatusUnsat, true
			}
			learnt, btLevel := s.analyze(confl)
			s.cancelUntil(btLevel)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], noClause)
			} else {
				cr := s.newClause(learnt, true)
				s.attach(cr)
				s.learnts = append(s.learnts, cr)
				s.bumpClause(&s.arena[cr])
				s.Stats.Learnt++
				s.uncheckedEnqueue(learnt[0], cr)
			}
			s.decayActivities()
			if int64(len(s.learnts)) > *maxLearnts {
				*maxLearnts = *maxLearnts * 11 / 10
				s.reduceDB()
			}
			continue
		}
		if conflicts >= budget || (s.MaxConflicts > 0 && *total >= s.MaxConflicts) {
			return StatusUnknown, false
		}
		// Decision: assumptions first, then VSIDS.
		var next Lit = -1
		for s.decisionLevel() < len(assumptions) {
			p := assumptions[s.decisionLevel()]
			switch s.value(p) {
			case lTrue:
				s.trailLim = append(s.trailLim, len(s.trail)) // dummy level
				continue
			case lFalse:
				return StatusUnsat, false // conflicts with assumptions
			default:
				next = p
			}
			break
		}
		if next == -1 {
			v := s.pickBranchVar()
			if v == -1 {
				return StatusSat, false
			}
			s.Stats.Decisions++
			next = MkLit(v, s.polarity[v])
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(next, noClause)
	}
}

// Model returns the satisfying assignment found by the last successful
// Solve; index i is the value of variable i. It returns nil if the last
// Solve did not succeed.
func (s *Solver) Model() []bool {
	if !s.haveModl {
		return nil
	}
	return append([]bool(nil), s.model...)
}

// Okay reports whether the solver is still consistent at the top level
// (false after a contradiction was added or derived).
func (s *Solver) Okay() bool { return s.ok }

// Assigned returns the literals currently assigned at decision level 0 —
// the unit-propagation fixpoint of the clauses added so far. This is the
// engine behind the paper's DeduceOrder: loading Φ(Se) into a solver
// propagates exactly the one-literal clauses the algorithm of Fig. 5
// collects and reduces by.
func (s *Solver) Assigned() []Lit {
	if s.decisionLevel() != 0 {
		panic("sat: Assigned above decision level 0")
	}
	return append([]Lit(nil), s.trail...)
}

// Value reports the top-level (decision level 0) forced value of v after a
// Solve call: +1 true, -1 false, 0 unassigned at the top level.
func (s *Solver) Value(v Var) int { return int(s.assigns[v]) }
