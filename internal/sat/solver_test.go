package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLitEncoding(t *testing.T) {
	for v := Var(0); v < 10; v++ {
		p, n := PosLit(v), NegLit(v)
		if p.Var() != v || n.Var() != v {
			t.Fatalf("Var round-trip failed for %d", v)
		}
		if p.Neg() || !n.Neg() {
			t.Fatalf("sign wrong for %d", v)
		}
		if p.Not() != n || n.Not() != p {
			t.Fatalf("Not() wrong for %d", v)
		}
		if MkLit(v, false) != p || MkLit(v, true) != n {
			t.Fatalf("MkLit wrong for %d", v)
		}
	}
}

func TestEmptyFormulaIsSat(t *testing.T) {
	s := New()
	if got := s.Solve(); got != StatusSat {
		t.Fatalf("empty formula: got %v, want SAT", got)
	}
}

func TestSingleUnit(t *testing.T) {
	s := New()
	v := s.NewVar()
	if !s.AddClause(PosLit(v)) {
		t.Fatal("AddClause failed")
	}
	if got := s.Solve(); got != StatusSat {
		t.Fatalf("got %v, want SAT", got)
	}
	if m := s.Model(); !m[v] {
		t.Fatalf("model should set x%d true", v)
	}
}

func TestContradictoryUnits(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.AddClause(PosLit(v))
	if s.AddClause(NegLit(v)) {
		t.Fatal("adding ~x after x should report inconsistency")
	}
	if got := s.Solve(); got != StatusUnsat {
		t.Fatalf("got %v, want UNSAT", got)
	}
}

func TestSimpleImplicationChain(t *testing.T) {
	// x0, x0->x1, x1->x2, ..., x(n-1) -> ~x0 gives UNSAT.
	s := New()
	const n = 20
	vs := make([]Var, n)
	for i := range vs {
		vs[i] = s.NewVar()
	}
	s.AddClause(PosLit(vs[0]))
	for i := 0; i+1 < n; i++ {
		s.AddClause(NegLit(vs[i]), PosLit(vs[i+1]))
	}
	s.AddClause(NegLit(vs[n-1]), NegLit(vs[0]))
	if got := s.Solve(); got != StatusUnsat {
		t.Fatalf("got %v, want UNSAT", got)
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(n+1, n): n+1 pigeons in n holes — classically UNSAT and forces
	// real conflict analysis.
	const holes = 5
	const pigeons = holes + 1
	s := New()
	vars := make([][]Var, pigeons)
	for p := range vars {
		vars[p] = make([]Var, holes)
		for h := range vars[p] {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		cl := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			cl[h] = PosLit(vars[p][h])
		}
		s.AddClause(cl...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(NegLit(vars[p1][h]), NegLit(vars[p2][h]))
			}
		}
	}
	if got := s.Solve(); got != StatusUnsat {
		t.Fatalf("pigeonhole: got %v, want UNSAT", got)
	}
}

func TestPigeonholeSatVariant(t *testing.T) {
	// n pigeons in n holes is SAT.
	const holes = 5
	s := New()
	vars := make([][]Var, holes)
	for p := range vars {
		vars[p] = make([]Var, holes)
		for h := range vars[p] {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p < holes; p++ {
		cl := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			cl[h] = PosLit(vars[p][h])
		}
		s.AddClause(cl...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < holes; p1++ {
			for p2 := p1 + 1; p2 < holes; p2++ {
				s.AddClause(NegLit(vars[p1][h]), NegLit(vars[p2][h]))
			}
		}
	}
	if got := s.Solve(); got != StatusSat {
		t.Fatalf("got %v, want SAT", got)
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(NegLit(a), PosLit(b)) // a -> b
	if got := s.Solve(PosLit(a), NegLit(b)); got != StatusUnsat {
		t.Fatalf("a & ~b under a->b: got %v, want UNSAT", got)
	}
	// The solver must remain usable and consistent afterwards.
	if got := s.Solve(PosLit(a)); got != StatusSat {
		t.Fatalf("a under a->b: got %v, want SAT", got)
	}
	if m := s.Model(); !m[a] || !m[b] {
		t.Fatalf("model %v should set both a and b", m)
	}
	if got := s.Solve(NegLit(b), PosLit(a)); got != StatusUnsat {
		t.Fatalf("~b & a: got %v, want UNSAT", got)
	}
	if got := s.Solve(NegLit(b)); got != StatusSat {
		t.Fatalf("~b alone: got %v, want SAT", got)
	}
	if m := s.Model(); m[a] || m[b] {
		t.Fatalf("model %v should falsify a and b", m)
	}
}

func TestTautologyAndDuplicates(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	if !s.AddClause(PosLit(a), NegLit(a)) {
		t.Fatal("tautology must be accepted (dropped)")
	}
	if !s.AddClause(PosLit(b), PosLit(b), PosLit(b)) {
		t.Fatal("duplicate literals must collapse")
	}
	if got := s.Solve(); got != StatusSat {
		t.Fatalf("got %v, want SAT", got)
	}
	if m := s.Model(); !m[b] {
		t.Fatal("collapsed unit should force b")
	}
}

// randomCNF builds a random 3-ish-SAT instance.
func randomCNF(rng *rand.Rand, nVars, nClauses int) *CNF {
	c := NewCNF(nVars)
	for i := 0; i < nClauses; i++ {
		width := 1 + rng.Intn(3)
		cl := make([]Lit, 0, width)
		for j := 0; j < width; j++ {
			v := Var(rng.Intn(nVars))
			cl = append(cl, MkLit(v, rng.Intn(2) == 0))
		}
		c.Add(cl...)
	}
	return c
}

func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for iter := 0; iter < 400; iter++ {
		nVars := 3 + rng.Intn(10)
		nClauses := 1 + rng.Intn(40)
		c := randomCNF(rng, nVars, nClauses)
		wantSt, _ := c.SolveBrute()
		s := c.Solver()
		got := s.Solve()
		if got != wantSt {
			t.Fatalf("iter %d: CDCL=%v brute=%v\n%s", iter, got, wantSt, c)
		}
		if got == StatusSat {
			m := s.Model()
			if !c.Eval(m) {
				t.Fatalf("iter %d: model does not satisfy formula\n%s", iter, c)
			}
		}
	}
}

func TestAssumptionsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(999))
	for iter := 0; iter < 200; iter++ {
		nVars := 3 + rng.Intn(8)
		c := randomCNF(rng, nVars, 1+rng.Intn(25))
		// Random assumption set over distinct vars.
		perm := rng.Perm(nVars)
		na := rng.Intn(3)
		var assume []Lit
		for i := 0; i < na && i < len(perm); i++ {
			assume = append(assume, MkLit(Var(perm[i]), rng.Intn(2) == 0))
		}
		// Brute force with assumptions as units.
		cb := c.Clone()
		for _, l := range assume {
			cb.Add(l)
		}
		wantSt, _ := cb.SolveBrute()
		s := c.Solver()
		got := s.Solve(assume...)
		if got != wantSt {
			t.Fatalf("iter %d: CDCL=%v brute=%v assume=%v\n%s", iter, got, wantSt, assume, c)
		}
	}
}

func TestSolverReuseAfterUnsatAssumptions(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for iter := 0; iter < 100; iter++ {
		nVars := 4 + rng.Intn(6)
		c := randomCNF(rng, nVars, 1+rng.Intn(20))
		s := c.Solver()
		for round := 0; round < 4; round++ {
			v := Var(rng.Intn(nVars))
			assume := []Lit{MkLit(v, rng.Intn(2) == 0)}
			cb := c.Clone()
			cb.Add(assume[0])
			wantSt, _ := cb.SolveBrute()
			if got := s.Solve(assume...); got != wantSt {
				t.Fatalf("iter %d round %d: got %v want %v", iter, round, got, wantSt)
			}
		}
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestCNFEval(t *testing.T) {
	c := NewCNF(2)
	c.Add(PosLit(0), PosLit(1))
	c.Add(NegLit(0))
	if c.Eval([]bool{true, true}) {
		t.Fatal("assignment violating ~x0 accepted")
	}
	if !c.Eval([]bool{false, true}) {
		t.Fatal("satisfying assignment rejected")
	}
}

func TestQuickModelAlwaysSatisfies(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCNF(rng, 4+rng.Intn(12), 1+rng.Intn(50))
		s := c.Solver()
		if s.Solve() == StatusSat {
			return c.Eval(s.Model())
		}
		return true
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}
