package sat

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestDIMACSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 50; iter++ {
		c := randomCNF(rng, 3+rng.Intn(10), 1+rng.Intn(30))
		var buf bytes.Buffer
		if err := c.WriteDIMACS(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadDIMACS(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.NVars != c.NVars || len(got.Clauses) != len(c.Clauses) {
			t.Fatalf("shape mismatch: %d/%d vs %d/%d",
				got.NVars, len(got.Clauses), c.NVars, len(c.Clauses))
		}
		// Satisfiability must agree.
		w1, _ := c.SolveBrute()
		w2, _ := got.SolveBrute()
		if w1 != w2 {
			t.Fatalf("round trip changed satisfiability: %v vs %v", w1, w2)
		}
	}
}

func TestReadDIMACSFormats(t *testing.T) {
	src := `c a comment
p cnf 3 2
1 -2 0
c mid comment
2 3
0
`
	c, err := ReadDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.NVars != 3 || len(c.Clauses) != 2 {
		t.Fatalf("parsed %d vars %d clauses", c.NVars, len(c.Clauses))
	}
	if c.Clauses[0][1] != NegLit(1) {
		t.Fatalf("clause 0 = %v", c.Clauses[0])
	}
}

func TestReadDIMACSErrors(t *testing.T) {
	cases := []string{
		"",                     // no problem line
		"p cnf x 2\n1 0\n",     // bad var count
		"p dnf 2 1\n1 0\n",     // wrong format tag
		"p cnf 2 1\n1 bogus\n", // bad literal
		"p cnf 2 1\n1 2\n",     // unterminated clause
	}
	for _, src := range cases {
		if _, err := ReadDIMACS(strings.NewReader(src)); err == nil {
			t.Errorf("ReadDIMACS(%q) should fail", src)
		}
	}
}

func TestWriteDIMACSEmptyClause(t *testing.T) {
	c := NewCNF(1)
	c.Add() // empty clause: unsatisfiable
	var buf bytes.Buffer
	if err := c.WriteDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := got.SolveBrute(); st != StatusUnsat {
		t.Fatal("empty clause must survive the round trip")
	}
}
