package sat

import (
	"math/rand"
	"testing"
)

// TestSolverResetMatchesFresh checks that one Reset-reused solver decides a
// stream of formulas exactly like a fresh solver per formula, including the
// brute-force oracle where feasible.
func TestSolverResetMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	reused := New()
	for i := 0; i < 200; i++ {
		nv := 3 + rng.Intn(12)
		c := randomCNF(rng, nv, 2+rng.Intn(40))

		reused.Reset()
		okR := c.LoadInto(reused)
		stR := StatusUnsat
		if okR {
			stR = reused.Solve()
		}

		fresh := New()
		okF := c.LoadInto(fresh)
		stF := StatusUnsat
		if okF {
			stF = fresh.Solve()
		}

		if okR != okF || stR != stF {
			t.Fatalf("formula %d: reused (ok=%v, %v) vs fresh (ok=%v, %v)\n%s",
				i, okR, stR, okF, stF, c)
		}
		want, _ := c.SolveBrute()
		got := stF
		if !okF {
			got = StatusUnsat
		}
		if got != want {
			t.Fatalf("formula %d: solver %v, brute %v\n%s", i, got, want, c)
		}
		if stR == StatusSat {
			m := reused.Model()
			if !c.Eval(m) {
				t.Fatalf("formula %d: reused solver model does not satisfy formula", i)
			}
		}
	}
}

// TestSolverResetAfterIncrementalUse reuses a solver that went through
// assumption queries and incremental clause additions before the Reset.
func TestSolverResetAfterIncrementalUse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New()
	for i := 0; i < 50; i++ {
		s.Reset()
		c := randomCNF(rng, 8, 25)
		if c.LoadInto(s) && s.Solve() == StatusSat {
			// A few assumption probes, then an incremental clause.
			for v := 0; v < 4; v++ {
				s.Solve(PosLit(Var(v)))
			}
			s.AddClause(NegLit(0), NegLit(1))
			c.Add(NegLit(0), NegLit(1))
			st := s.Solve()
			want, _ := c.SolveBrute()
			if s.Okay() && st != want {
				t.Fatalf("round %d: incremental %v, brute %v", i, st, want)
			}
		}
	}
}

// TestCNFResetReuse checks that a Reset CNF rebuilt with different clauses
// matches a freshly built one.
func TestCNFResetReuse(t *testing.T) {
	c := NewCNF(0)
	c.Add(PosLit(0), NegLit(1))
	c.Add(PosLit(2))
	c.Reset()
	if c.NVars != 0 || len(c.Clauses) != 0 {
		t.Fatalf("Reset left NVars=%d clauses=%d", c.NVars, len(c.Clauses))
	}
	c.Add(NegLit(0), PosLit(3))
	c.Add(PosLit(1), PosLit(2), NegLit(3))
	fresh := NewCNF(0)
	fresh.Add(NegLit(0), PosLit(3))
	fresh.Add(PosLit(1), PosLit(2), NegLit(3))
	if c.String() != fresh.String() {
		t.Fatalf("reused CNF differs from fresh:\n%s\nvs\n%s", c, fresh)
	}
	// Clauses must be safely append-protected: appending to one clause must
	// not clobber its neighbor in the shared arena.
	cl := c.Clauses[0]
	_ = append(cl, PosLit(9))
	if c.String() != fresh.String() {
		t.Fatalf("append to a returned clause corrupted the arena:\n%s", c)
	}
}
