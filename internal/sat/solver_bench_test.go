package sat

import (
	"math/rand"
	"testing"
)

// BenchmarkSolveRandom3SAT measures end-to-end solving of random 3-SAT near
// the satisfiability threshold (clause/variable ratio ~4.2).
func BenchmarkSolveRandom3SAT(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	const nVars = 120
	formulas := make([]*CNF, 16)
	for i := range formulas {
		c := NewCNF(nVars)
		for k := 0; k < nVars*42/10; k++ {
			var cl []Lit
			for j := 0; j < 3; j++ {
				cl = append(cl, MkLit(Var(rng.Intn(nVars)), rng.Intn(2) == 0))
			}
			c.Add(cl...)
		}
		formulas[i] = c
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		formulas[i%len(formulas)].LoadInto(s)
		s.Solve()
	}
}

// BenchmarkSolvePigeonhole measures a classic hard UNSAT family (PHP(8,7)),
// which exercises clause learning heavily.
func BenchmarkSolvePigeonhole(b *testing.B) {
	const holes = 7
	build := func() *Solver {
		s := New()
		vars := make([][]Var, holes+1)
		for p := range vars {
			vars[p] = make([]Var, holes)
			for h := range vars[p] {
				vars[p][h] = s.NewVar()
			}
		}
		for p := 0; p <= holes; p++ {
			cl := make([]Lit, holes)
			for h := 0; h < holes; h++ {
				cl[h] = PosLit(vars[p][h])
			}
			s.AddClause(cl...)
		}
		for h := 0; h < holes; h++ {
			for p1 := 0; p1 <= holes; p1++ {
				for p2 := p1 + 1; p2 <= holes; p2++ {
					s.AddClause(NegLit(vars[p1][h]), NegLit(vars[p2][h]))
				}
			}
		}
		return s
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if build().Solve() != StatusUnsat {
			b.Fatal("PHP must be UNSAT")
		}
	}
}

// BenchmarkPropagationOnly measures the unit-propagation path DeduceOrder
// relies on: a long implication chain collapses at load time.
func BenchmarkPropagationOnly(b *testing.B) {
	const n = 5000
	c := NewCNF(n)
	c.Add(PosLit(0))
	for i := 0; i+1 < n; i++ {
		c.Add(NegLit(Var(i)), PosLit(Var(i+1)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		if !c.LoadInto(s) {
			b.Fatal("chain must stay consistent")
		}
		if len(s.Assigned()) != n {
			b.Fatal("chain must fully propagate")
		}
	}
}

// BenchmarkAssumptionSolves measures repeated assumption-scoped solving on
// one loaded formula — the NaiveDeduce and MaxSAT access pattern.
func BenchmarkAssumptionSolves(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const nVars = 200
	c := NewCNF(nVars)
	for k := 0; k < nVars*3; k++ {
		c.Add(MkLit(Var(rng.Intn(nVars)), rng.Intn(2) == 0),
			MkLit(Var(rng.Intn(nVars)), rng.Intn(2) == 0),
			MkLit(Var(rng.Intn(nVars)), rng.Intn(2) == 0))
	}
	s := New()
	c.LoadInto(s)
	if s.Solve() != StatusSat {
		b.Skip("unlucky seed produced UNSAT base formula")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := Var(i % nVars)
		s.Solve(MkLit(v, i%2 == 0))
	}
}
