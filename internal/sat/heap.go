package sat

// varHeap is a max-heap of variables ordered by activity, with position
// tracking so activities can be bumped in place.
type varHeap struct {
	heap []Var
	pos  []int // pos[v] = index in heap, or -1
	act  *[]float64
}

func newVarHeap(act *[]float64) *varHeap {
	return &varHeap{act: act}
}

// reset empties the heap while keeping its storage for reuse.
func (h *varHeap) reset() {
	h.heap = h.heap[:0]
	h.pos = h.pos[:0]
}

func (h *varHeap) grow(n int) {
	for len(h.pos) < n {
		h.pos = append(h.pos, -1)
	}
}

func (h *varHeap) inHeap(v Var) bool {
	return int(v) < len(h.pos) && h.pos[v] >= 0
}

func (h *varHeap) less(a, b Var) bool {
	return (*h.act)[a] > (*h.act)[b]
}

func (h *varHeap) percolateUp(i int) {
	v := h.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(v, h.heap[p]) {
			break
		}
		h.heap[i] = h.heap[p]
		h.pos[h.heap[i]] = i
		i = p
	}
	h.heap[i] = v
	h.pos[v] = i
}

func (h *varHeap) percolateDown(i int) {
	v := h.heap[i]
	for {
		l, r := 2*i+1, 2*i+2
		if l >= len(h.heap) {
			break
		}
		c := l
		if r < len(h.heap) && h.less(h.heap[r], h.heap[l]) {
			c = r
		}
		if !h.less(h.heap[c], v) {
			break
		}
		h.heap[i] = h.heap[c]
		h.pos[h.heap[i]] = i
		i = c
	}
	h.heap[i] = v
	h.pos[v] = i
}

func (h *varHeap) insert(v Var) {
	h.grow(int(v) + 1)
	if h.inHeap(v) {
		return
	}
	h.heap = append(h.heap, v)
	h.pos[v] = len(h.heap) - 1
	h.percolateUp(len(h.heap) - 1)
}

func (h *varHeap) removeMax() Var {
	v := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap = h.heap[:len(h.heap)-1]
	h.pos[v] = -1
	if len(h.heap) > 0 {
		h.heap[0] = last
		h.pos[last] = 0
		h.percolateDown(0)
	}
	return v
}

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

// decreased must be called after bumping v's activity upward.
func (h *varHeap) decreased(v Var) {
	if h.inHeap(v) {
		h.percolateUp(h.pos[v])
	}
}
