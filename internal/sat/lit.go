// Package sat implements a conflict-driven clause-learning (CDCL) SAT solver
// in the style of MiniSat: two-watched-literal propagation, first-UIP clause
// learning, VSIDS variable activity, phase saving and Luby restarts.
//
// It stands in for the MiniSat dependency of Fan et al. (ICDE 2013), whose
// IsValid, NaiveDeduce and Suggest algorithms all reduce to SAT over the CNF
// Φ(Se) built by the encode package. A brute-force reference solver is
// included for property tests.
package sat

import "fmt"

// Var is a propositional variable, numbered from 0.
type Var int32

// Lit is a literal: variable with a sign. The positive literal of variable v
// is Lit(2v); the negative literal is Lit(2v+1).
type Lit int32

// MkLit builds the literal of v, negated if neg.
func MkLit(v Var, neg bool) Lit {
	l := Lit(v) << 1
	if neg {
		l |= 1
	}
	return l
}

// PosLit returns the positive literal of v.
func PosLit(v Var) Lit { return Lit(v) << 1 }

// NegLit returns the negative literal of v.
func NegLit(v Var) Lit { return Lit(v)<<1 | 1 }

// Var returns the literal's variable.
func (l Lit) Var() Var { return Var(l >> 1) }

// Neg reports whether the literal is negative.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

func (l Lit) String() string {
	if l.Neg() {
		return fmt.Sprintf("~x%d", l.Var())
	}
	return fmt.Sprintf("x%d", l.Var())
}

// lbool is a three-valued boolean.
type lbool int8

const (
	lUndef lbool = 0
	lTrue  lbool = 1
	lFalse lbool = -1
)

// Status is the outcome of a solve call.
type Status int

const (
	// StatusUnknown means the conflict budget was exhausted.
	StatusUnknown Status = iota
	// StatusSat means a satisfying assignment was found.
	StatusSat
	// StatusUnsat means the formula (under the given assumptions) is
	// unsatisfiable.
	StatusUnsat
)

func (s Status) String() string {
	switch s {
	case StatusSat:
		return "SAT"
	case StatusUnsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}
