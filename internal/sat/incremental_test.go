package sat

import (
	"math/rand"
	"testing"
)

// TestIncrementalAgainstBruteForce interleaves Solve calls with clause
// additions and cross-checks every verdict against exhaustive enumeration of
// the clauses added so far. This is the contract resolution sessions rely
// on: clause addition after a Solve preserves soundness and completeness,
// learned clauses included.
func TestIncrementalAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	for iter := 0; iter < 200; iter++ {
		nVars := 3 + rng.Intn(10)
		full := randomCNF(rng, nVars, 4+rng.Intn(30))

		s := New()
		sofar := NewCNF(full.NVars)
		next := 0
		for next < len(full.Clauses) {
			// Load a random-sized batch of clauses.
			batch := 1 + rng.Intn(5)
			for b := 0; b < batch && next < len(full.Clauses); b++ {
				cl := full.Clauses[next]
				next++
				sofar.Add(cl...)
				for s.NumVars() < sofar.NVars {
					s.NewVar()
				}
				s.AddClause(cl...)
			}
			got := s.Solve()
			want, _ := sofar.SolveBrute()
			if got != want {
				t.Fatalf("iter %d after %d clauses: incremental=%v brute=%v\n%s",
					iter, next, got, want, sofar)
			}
			if got == StatusSat {
				m := s.Model()
				if m == nil || !sofar.Eval(m[:sofar.NVars]) {
					t.Fatalf("iter %d: model does not satisfy the formula so far", iter)
				}
			}
			if got == StatusUnsat {
				break // every extension stays unsat; nothing more to check
			}
		}
	}
}

// TestIncrementalAssumptionsAfterGrowth checks assumption queries issued
// between clause additions: each query must match a fresh solver on the
// current formula.
func TestIncrementalAssumptionsAfterGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(8080))
	for iter := 0; iter < 120; iter++ {
		nVars := 3 + rng.Intn(8)
		c1 := randomCNF(rng, nVars, 2+rng.Intn(10))
		c2 := randomCNF(rng, nVars, 1+rng.Intn(10))

		s := New()
		c1.LoadInto(s)
		s.Solve() // accumulate learned clauses before growth
		if !c2.AppendInto(s, 0) && s.Okay() {
			t.Fatalf("iter %d: AppendInto false but solver still okay", iter)
		}

		combined := c1.Clone()
		for _, cl := range c2.Clauses {
			combined.Add(cl...)
		}
		for probe := 0; probe < 6; probe++ {
			v := Var(rng.Intn(nVars))
			assume := MkLit(v, rng.Intn(2) == 0)
			got := s.Solve(assume)

			ref := New()
			combined.LoadInto(ref)
			want := ref.Solve(assume)
			if got != want {
				t.Fatalf("iter %d probe %d: incremental=%v fresh=%v under %v",
					iter, probe, got, want, assume)
			}
		}
	}
}

// TestAppendIntoDelta verifies AppendInto only attaches the suffix: the
// prefix clauses must not be re-added.
func TestAppendIntoDelta(t *testing.T) {
	c := NewCNF(3)
	c.Add(PosLit(0), PosLit(1))
	c.Add(NegLit(0), PosLit(2))
	s := New()
	if !c.LoadInto(s) {
		t.Fatal("load failed")
	}
	n := s.NumClauses()
	c.Add(PosLit(1), PosLit(2))
	if !c.AppendInto(s, 2) {
		t.Fatal("append failed")
	}
	if s.NumClauses() != n+1 {
		t.Fatalf("expected exactly one new clause, got %d -> %d", n, s.NumClauses())
	}
	if s.Solve() != StatusSat {
		t.Fatal("combined formula should be SAT")
	}
}

// TestAddClauseInvalidatesModel pins the post-solve safety contract: a
// clause added after a successful Solve discards the cached model.
func TestAddClauseInvalidatesModel(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.AddClause(PosLit(v))
	if s.Solve() != StatusSat {
		t.Fatal("unit formula should be SAT")
	}
	if s.Model() == nil {
		t.Fatal("model missing after SAT")
	}
	w := s.NewVar()
	s.AddClause(PosLit(w))
	if s.Model() != nil {
		t.Fatal("stale model survived AddClause")
	}
	if s.Solve() != StatusSat {
		t.Fatal("extended formula should still be SAT")
	}
	if m := s.Model(); !m[v] || !m[w] {
		t.Fatalf("model should set both units: %v", m)
	}
}

// TestSolveCounter checks the Solves statistic used by session reuse
// accounting.
func TestSolveCounter(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.AddClause(PosLit(v))
	for i := 0; i < 5; i++ {
		s.Solve()
	}
	if s.Stats.Solves != 5 {
		t.Fatalf("Solves = %d, want 5", s.Stats.Solves)
	}
}
