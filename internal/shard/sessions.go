package shard

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Session affinity: the coordinator is stateless, so the owning backend is
// encoded in the session id itself. A fleet session id is
// "<backend-tag>.<backend-session-id>" — the tag is derived from the
// backend URL, so any coordinator (including one restarted mid-
// conversation) resolves the id to the same backend.

// splitSessionID resolves a fleet session id to its backend and the
// backend-local id.
func (c *Coordinator) splitSessionID(id string) (*backend, string, bool) {
	tag, inner, ok := strings.Cut(id, ".")
	if !ok || inner == "" {
		return nil, "", false
	}
	b, ok := c.byTag[tag]
	if !ok {
		return nil, "", false
	}
	return b, inner, true
}

// rewriteSessionBody retags the backend's session id in a session-state
// response body so the client only ever sees fleet ids.
func rewriteSessionBody(data []byte, tag string) []byte {
	var obj map[string]json.RawMessage
	if err := json.Unmarshal(data, &obj); err != nil {
		return data
	}
	var inner string
	if raw, ok := obj["session"]; !ok || json.Unmarshal(raw, &inner) != nil || inner == "" {
		return data
	}
	retagged, err := json.Marshal(tag + "." + inner)
	if err != nil {
		return data
	}
	obj["session"] = retagged
	out, err := json.Marshal(obj)
	if err != nil {
		return data
	}
	return out
}

// handleSessionCreate is POST /v1/session on the coordinator: route the
// create to the entity's owner (retrying siblings while nothing stateful
// exists yet), then hand the client a tagged session id that pins every
// follow-up request to that backend.
func (c *Coordinator) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	c.met.sessionRequests.Add(1)
	body, ok := c.readBody(w, r)
	if !ok {
		return
	}
	var req keyedRequest
	if err := json.Unmarshal(body, &req); err != nil {
		c.writeError(w, http.StatusBadRequest, codeBadRequest, "bad JSON: "+err.Error())
		return
	}
	key := req.Entity.ID
	if key == "" {
		key = fmt.Sprintf("%016x", hash64(string(body)))
	}
	var tried uint64
	for {
		b, idx := c.route(key, tried)
		if b == nil {
			c.met.noBackend.Add(1)
			c.writeError(w, http.StatusServiceUnavailable, codeNoBackend, "no live backend for session")
			return
		}
		if tried != 0 {
			b.retries.Add(1)
		}
		tried |= 1 << uint(idx)
		status, data, retryable, err := c.post(r.Context(), b, "/v1/session", "application/json", body)
		if err != nil {
			if retryable {
				// Nothing stateful exists client-side yet: the abandoned
				// create (if the backend got that far) expires by TTL.
				continue
			}
			c.writeError(w, http.StatusBadGateway, codeBackendDown, err.Error())
			return
		}
		if status == http.StatusOK {
			data = rewriteSessionBody(data, b.tag)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write(data)
		return
	}
}

// handleSessionProxy serves GET/DELETE /v1/session/{id} and POST
// /v1/session/{id}/answer: strip the backend tag, forward to the pinned
// backend, retag the response. Sessions are stateful, so there is no
// sibling to retry on — an unreachable owner answers 502 and the client
// re-creates (or the operator restores from a snapshot).
func (c *Coordinator) handleSessionProxy(w http.ResponseWriter, r *http.Request) {
	c.met.sessionRequests.Add(1)
	id := r.PathValue("id")
	b, inner, ok := c.splitSessionID(id)
	if !ok {
		c.writeError(w, http.StatusNotFound, codeBadSessionID,
			fmt.Sprintf("no live session %q: id does not name a fleet backend", id))
		return
	}
	path := "/v1/session/" + inner
	if strings.HasSuffix(r.URL.Path, "/answer") {
		path += "/answer"
	}

	var status int
	var data []byte
	switch r.Method {
	case http.MethodPost:
		body, ok := c.readBody(w, r)
		if !ok {
			return
		}
		var err error
		status, data, _, err = c.post(r.Context(), b, path, "application/json", body)
		if err != nil {
			c.writeError(w, http.StatusBadGateway, codeBackendDown, err.Error())
			return
		}
	default: // GET, DELETE
		b.requests.Add(1)
		req, err := http.NewRequestWithContext(r.Context(), r.Method, b.url+path, nil)
		if err != nil {
			c.writeError(w, http.StatusBadGateway, codeBackendDown, err.Error())
			return
		}
		resp, err := c.cfg.Client.Do(req)
		if err != nil {
			c.markDown(b)
			c.writeError(w, http.StatusBadGateway, codeBackendDown, err.Error())
			return
		}
		defer resp.Body.Close()
		status = resp.StatusCode
		if data, err = io.ReadAll(resp.Body); err != nil {
			c.markDown(b)
			c.writeError(w, http.StatusBadGateway, codeBackendDown, err.Error())
			return
		}
	}
	if status == http.StatusOK {
		data = rewriteSessionBody(data, b.tag)
	}
	if status == http.StatusNoContent {
		w.WriteHeader(status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
}
