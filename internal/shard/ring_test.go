package shard

import (
	"fmt"
	"math"
	"reflect"
	"testing"
)

func TestRingOwnersDistinctAndStable(t *testing.T) {
	names := []string{"http://a:1", "http://b:1", "http://c:1"}
	r, err := NewRing(names, 64)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := NewRing(names, 64)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("entity-%d", i)
		owners := r.Owners(key, 3)
		if len(owners) != 3 {
			t.Fatalf("key %s: %d owners, want 3", key, len(owners))
		}
		seen := map[int]bool{}
		for _, o := range owners {
			if o < 0 || o >= len(names) || seen[o] {
				t.Fatalf("key %s: bad preference list %v", key, owners)
			}
			seen[o] = true
		}
		// Placement is a pure function of the backend set: a second ring
		// (another coordinator) must agree on the full preference list.
		if got := r2.Owners(key, 3); !reflect.DeepEqual(got, owners) {
			t.Fatalf("key %s: rings disagree: %v vs %v", key, got, owners)
		}
	}
	if got := r.Owners("k", 99); len(got) != 3 {
		t.Fatalf("n over backend count must clamp, got %d owners", len(got))
	}
}

func TestRingSharesSumToOne(t *testing.T) {
	r, err := NewRing([]string{"a", "b", "c", "d"}, 128)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := 0; i < 4; i++ {
		share := r.Share(i)
		if share <= 0 || share >= 1 {
			t.Fatalf("backend %d share %g out of (0,1)", i, share)
		}
		sum += share
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %g, want 1", sum)
	}
}

func TestRingBalance(t *testing.T) {
	const n = 4
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("http://backend-%d:8372", i)
	}
	r, err := NewRing(names, 128)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, n)
	const keys = 20000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("person-%d", i))]++
	}
	for i, got := range counts {
		frac := float64(got) / keys
		// 128 vnodes keeps primaries within a loose factor of fair share.
		if frac < 0.5/n || frac > 2.0/n {
			t.Fatalf("backend %d owns %.1f%% of keys (counts %v)", i, 100*frac, counts)
		}
	}
}

// TestRingSequentialKeysSpread pins the regression the mix64 finalizer
// fixes: raw FNV-1a places keys that differ only in a trailing digit within
// a few multiples of the FNV prime of each other, so whole sequential key
// families ("e0", "e1", …) collapse onto one backend.
func TestRingSequentialKeysSpread(t *testing.T) {
	r, err := NewRing([]string{"http://a:8372", "http://b:8372"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, prefix := range []string{"e", "Edith ", "person-"} {
		counts := [2]int{}
		for i := 0; i < 16; i++ {
			counts[r.Owner(fmt.Sprintf("%s%d", prefix, i))]++
		}
		if counts[0] == 0 || counts[1] == 0 {
			t.Fatalf("sequential keys %q0..15 all landed on one backend: %v", prefix, counts)
		}
	}
}

func TestRingRejectsBadConfig(t *testing.T) {
	if _, err := NewRing(nil, 8); err == nil {
		t.Fatal("empty ring must be rejected")
	}
	if _, err := NewRing([]string{"a"}, 0); err == nil {
		t.Fatal("zero vnodes must be rejected")
	}
	if _, err := NewRing([]string{"a", "a"}, 8); err == nil {
		t.Fatal("duplicate backends must be rejected")
	}
}
