package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestFleetMultiProcess drives the real binaries end to end: one crshard
// coordinator in front of two crserve backends, all separate OS processes on
// localhost. Phase 1 checks the distributed dataset output is byte-identical
// to a single-node run (a third, out-of-fleet crserve). Phase 2 SIGKILLs one
// backend between health probes — the coordinator still believes it is up,
// so the death is discovered on in-flight requests — and requires batch and
// dataset streams to complete via retry-on-sibling with reconciled stats,
// and the live entity fed before the kill to survive on its warm replica.
// Phase 3 restarts a -live-snapshot crserve over SIGTERM and requires its
// entity state back byte-identical.
//
// Skipped under -short (it builds both binaries). When CRSHARD_METRICS_OUT
// is set, the coordinator's final /metrics scrape is written there so CI can
// upload it on failure.
func TestFleetMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process fleet test: skipped in -short mode")
	}

	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin, "./cmd/crserve", "./cmd/crshard")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	backend1 := startProc(t, filepath.Join(bin, "crserve"), "-addr", freeAddr(t))
	backend2 := startProc(t, filepath.Join(bin, "crserve"), "-addr", freeAddr(t))
	baseline := startProc(t, filepath.Join(bin, "crserve"), "-addr", freeAddr(t))
	waitReady(t, backend1.url)
	waitReady(t, backend2.url)
	waitReady(t, baseline.url)

	// A long health interval keeps liveness discovery on the request path:
	// phase 2 depends on the coordinator not noticing the kill via probes.
	coord := startProc(t, filepath.Join(bin, "crshard"),
		"-addr", freeAddr(t),
		"-backends", backend1.url+","+backend2.url,
		"-health-interval", "10m",
		"-chunk", "8")
	waitReady(t, coord.url)
	if path := os.Getenv("CRSHARD_METRICS_OUT"); path != "" {
		t.Cleanup(func() { dumpMetrics(coord.url, path) })
	}

	// Phase 1: distributed == single-node, byte for byte per entity.
	const n = 40
	body := edithDatasetBody(t, n)
	resp, lines := postNDJSON(t, coord.url+"/v1/resolve/dataset", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("coordinator dataset status %d", resp.StatusCode)
	}
	sharded, shardedSum := collectDataset(t, lines)
	resp, lines = postNDJSON(t, baseline.url+"/v1/resolve/dataset", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline dataset status %d", resp.StatusCode)
	}
	base, _ := collectDataset(t, lines)
	if len(sharded) != n || len(base) != n {
		t.Fatalf("got %d sharded / %d baseline results, want %d", len(sharded), len(base), n)
	}
	for key, want := range base {
		if sharded[key] != want {
			t.Fatalf("key %q differs:\n fleet    %s\n baseline %s", key, sharded[key], want)
		}
	}
	if shardedSum.Entities != n || shardedSum.Dropped != 0 {
		t.Fatalf("fleet summary does not reconcile: %+v", shardedSum)
	}

	// Phase 1b: a live-entity upsert round rides the same ring. Both deltas
	// for one key must land on the same backend (affinity is ring placement
	// on the client-chosen key), so the second sees the first's row.
	row := func(kids int) []any {
		return []any{"Edith Live", "working", "nurse", kids, "NY", "212", "10036", "Manhattan"}
	}
	st, status := entityUpsert(t, coord.url, "edith-live", []any{row(0)})
	if status != http.StatusOK || st["created"] != true || st["rows"] != float64(1) {
		t.Fatalf("live create: status %d, state %v", status, st)
	}
	st, status = entityUpsert(t, coord.url, "edith-live", []any{row(1)})
	if status != http.StatusOK || st["created"] == true || st["rows"] != float64(2) {
		t.Fatalf("live extend: status %d, state %v", status, st)
	}
	if _, ok := st["extended"]; !ok {
		t.Fatalf("live extend: no incremental-vs-rebuild verdict: %v", st)
	}
	st, status = entityGet(t, coord.url, "edith-live")
	if status != http.StatusOK || st["rows"] != float64(2) || st["valid"] != true {
		t.Fatalf("live get: status %d, state %v", status, st)
	}
	// Both deltas must reach the warm replica before the kill below, or
	// phase 2b would race the async forwards.
	waitMetricAtLeast(t, coord.url, "crshard_replica_forwards_total", 2)

	// Phase 2: kill backend2 without warning. Fresh entity names keep the
	// result caches out of the comparison.
	if err := backend2.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("kill backend: %v", err)
	}
	backend2.cmd.Wait()

	// Disjoint name ranges: phase 1 used 0..n, the batch and dataset below
	// must not share entities with it or each other, or result-cache hits
	// would flip "cached" flags and break the byte comparison.
	bbody := batchBodyOffset(t, 1000, 32)
	resp, blines := postNDJSON(t, coord.url+"/v1/resolve/batch", bbody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch after kill: status %d", resp.StatusCode)
	}
	results := collectBatch(t, blines)
	if len(results) != 32 {
		t.Fatalf("batch after kill: %d results, want 32", len(results))
	}
	for i, res := range results {
		if res.Error != nil {
			t.Fatalf("batch after kill: entity %d errored: %+v", i, res.Error)
		}
	}

	dbody := datasetBodyOffset(t, 2000, n)
	resp, lines = postNDJSON(t, coord.url+"/v1/resolve/dataset", dbody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dataset after kill: status %d", resp.StatusCode)
	}
	sharded, sum := collectDataset(t, lines)
	resp, lines = postNDJSON(t, baseline.url+"/v1/resolve/dataset", dbody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline dataset status %d", resp.StatusCode)
	}
	base, _ = collectDataset(t, lines)
	if len(sharded) != n {
		t.Fatalf("dataset after kill: %d results, want %d", len(sharded), n)
	}
	for key, want := range base {
		if sharded[key] != want {
			t.Fatalf("key %q differs after kill:\n fleet    %s\n baseline %s", key, sharded[key], want)
		}
	}
	if sum.Entities != n || sum.Dropped != 0 {
		t.Fatalf("post-kill summary does not reconcile: %+v", sum)
	}

	// Phase 2b: the entity fed before the kill survives on its warm
	// replica. Whichever backend owned edith-live, one client call comes
	// back with the full pre-kill state — the coordinator absorbs the
	// owner's death internally (mark-down, backoff, next preference).
	st, status = entityGet(t, coord.url, "edith-live")
	if status != http.StatusOK || st["rows"] != float64(2) || st["valid"] != true {
		t.Fatalf("post-kill live get: status %d, state %v", status, st)
	}
	if lag, ok := st["replica_lag"]; ok {
		t.Fatalf("flushed replica served with lag %v: %v", lag, st)
	}
	// And the upsert stream continues on the same accumulated state: the
	// third delta extends to three rows instead of starting a fresh entity.
	st, status = entityUpsert(t, coord.url, "edith-live", []any{row(2)})
	if status != http.StatusOK || st["created"] == true || st["rows"] != float64(3) {
		t.Fatalf("post-kill upsert on replicated entity: status %d, state %v", status, st)
	}
	// A key never seen before the kill still lands first try, wherever the
	// ring points: internal failover replaces the old 502-to-the-client.
	st, status = entityUpsert(t, coord.url, "edith-live-2", []any{row(0)})
	if status != http.StatusOK || st["created"] != true || st["rows"] != float64(1) {
		t.Fatalf("post-kill upsert on fresh key: status %d, state %v", status, st)
	}

	// The coordinator observed the death (errors on the victim, retried work
	// on the survivor) and stays ready on the surviving backend.
	metrics := getBody(t, coord.url+"/metrics")
	for _, want := range []string{
		fmt.Sprintf("crshard_backend_up{backend=%q} 0", backend2.url),
		fmt.Sprintf("crshard_backend_up{backend=%q} 1", backend1.url),
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
	if !strings.Contains(metrics, fmt.Sprintf("crshard_backend_errors_total{backend=%q}", backend2.url)) ||
		strings.Contains(metrics, fmt.Sprintf("crshard_backend_errors_total{backend=%q} 0", backend2.url)) {
		t.Fatalf("victim recorded no transport errors:\n%s", metrics)
	}
	if strings.Contains(metrics, fmt.Sprintf("crshard_backend_retries_total{backend=%q} 0", backend1.url)) {
		t.Fatalf("survivor recorded no retried work:\n%s", metrics)
	}
	rresp, err := http.Get(coord.url + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("coordinator unready with a surviving backend: %d", rresp.StatusCode)
	}

	// Phase 3: -live-snapshot across a graceful restart. A dedicated crserve
	// accumulates an entity, takes SIGTERM (the drain seam writes the
	// row-log snapshot), and a fresh process on the same file must serve the
	// state back byte-identical.
	snapPath := filepath.Join(t.TempDir(), "live.ndjson")
	snapSrv := startProc(t, filepath.Join(bin, "crserve"), "-addr", freeAddr(t), "-live-snapshot", snapPath)
	waitReady(t, snapSrv.url)
	if _, status := entityUpsert(t, snapSrv.url, "edith-snap", []any{row(0)}); status != http.StatusOK {
		t.Fatalf("snapshot phase create: status %d", status)
	}
	if st, status := entityUpsert(t, snapSrv.url, "edith-snap", []any{row(1)}); status != http.StatusOK || st["rows"] != float64(2) {
		t.Fatalf("snapshot phase extend: status %d, state %v", status, st)
	}
	before := getBody(t, snapSrv.url+"/v1/entity/edith-snap")
	if err := snapSrv.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("terminate snapshot server: %v", err)
	}
	if err := snapSrv.cmd.Wait(); err != nil {
		t.Fatalf("snapshot server did not exit cleanly: %v", err)
	}
	snapSrv2 := startProc(t, filepath.Join(bin, "crserve"), "-addr", freeAddr(t), "-live-snapshot", snapPath)
	waitReady(t, snapSrv2.url)
	// Two reads: both before and after are then cache-hit renderings, so
	// the comparison is byte-for-byte on identical code paths.
	getBody(t, snapSrv2.url+"/v1/entity/edith-snap")
	after := getBody(t, snapSrv2.url+"/v1/entity/edith-snap")
	if before != after {
		t.Fatalf("live entity diverged across -live-snapshot restart:\nbefore %s\nafter  %s", before, after)
	}
}

// waitMetricAtLeast polls a Prometheus-style counter until it reaches want.
func waitMetricAtLeast(t *testing.T, baseURL, name string, want int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		for _, line := range strings.Split(getBody(t, baseURL+"/metrics"), "\n") {
			if rest, ok := strings.CutPrefix(line, name+" "); ok {
				var got int
				if _, err := fmt.Sscanf(rest, "%d", &got); err == nil && got >= want {
					return
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never reached %d", name, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// entityUpsert posts rows (Edith rule set) to a live entity through the
// given base URL and returns the decoded state plus the HTTP status.
func entityUpsert(t testing.TB, baseURL, key string, rows []any) (map[string]any, int) {
	t.Helper()
	m := edithWireRules()
	m["rows"] = rows
	resp, err := http.Post(baseURL+"/v1/entity/"+key+"/rows", "application/json",
		bytes.NewReader(marshalLine(t, m)))
	if err != nil {
		t.Fatalf("entity upsert %s: %v", key, err)
	}
	defer resp.Body.Close()
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("entity upsert %s: decode: %v", key, err)
	}
	return st, resp.StatusCode
}

func entityGet(t testing.TB, baseURL, key string) (map[string]any, int) {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/entity/" + key)
	if err != nil {
		t.Fatalf("entity get %s: %v", key, err)
	}
	defer resp.Body.Close()
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("entity get %s: decode: %v", key, err)
	}
	return st, resp.StatusCode
}

// batchBodyOffset is edithBatchBody with entity ids/names offset so repeated
// phases never share result-cache keys.
func batchBodyOffset(t *testing.T, off, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.Write(marshalLine(t, edithWireRules()))
	buf.WriteByte('\n')
	for i := off; i < off+n; i++ {
		buf.Write(marshalLine(t, edithEntity(i)))
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

func datasetBodyOffset(t *testing.T, off, n int) []byte {
	t.Helper()
	full := edithDatasetBody(t, off+n)
	lines := bytes.SplitAfter(full, []byte("\n"))
	var buf bytes.Buffer
	buf.Write(lines[0]) // header
	for _, l := range lines[1+3*off:] {
		buf.Write(l)
	}
	return buf.Bytes()
}

type proc struct {
	cmd *exec.Cmd
	url string
}

// startProc launches a fleet binary on addr and arranges teardown.
func startProc(t *testing.T, bin string, args ...string) *proc {
	t.Helper()
	addr := args[1] // "-addr" value by construction
	cmd := exec.Command(bin, args...)
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	return &proc{cmd: cmd, url: "http://" + addr}
}

// freeAddr reserves a localhost port and releases it for the process under
// test to bind.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitReady(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(url + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never became ready (last err %v)", url, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// dumpMetrics best-effort scrapes the coordinator for CI artifact upload.
func dumpMetrics(coordURL, path string) {
	resp, err := http.Get(coordURL + "/metrics")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return
	}
	os.WriteFile(path, data, 0o644)
}
