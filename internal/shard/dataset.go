package shard

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"conflictres/internal/relation"
)

// keySep joins multi-column dataset keys — the same non-printing separator
// the dataset engine uses, so coordinator routing and backend grouping
// agree on key identity.
const keySep = "\x1f"

// dsAccount merges per-backend dataset outcomes into one client summary.
// Outcome counters (entities/resolved/invalid/failed/cached) are computed
// coordinator-side from the result lines actually relayed, so they
// reconcile with the merged output even across failovers; windows, splits
// and backend-side drops are summed from the backend summary lines.
type dsAccount struct {
	mu       sync.Mutex
	entities int64
	resolved int64
	invalid  int64
	failed   int64
	cached   int64
	windows  int64
	split    int64
	dropped  int64
}

// emitRaw relays one backend line verbatim (plus newline) under the merge
// lock — dataset result values never pass through a decode/re-encode, so
// the merged output is byte-identical per line to a single-node run.
func (e *emitter) emitRaw(line []byte) {
	start := time.Now()
	e.mu.Lock()
	e.encRaw(line)
	e.mu.Unlock()
	e.mergeNs(int64(time.Since(start)))
}

func (e *emitter) encRaw(line []byte) {
	if e.out != nil {
		e.out.Write(line)
		e.out.Write([]byte{'\n'})
	}
	if e.w != nil {
		e.w.Flush()
	}
}

// handleDataset is POST /v1/resolve/dataset on the coordinator: the same
// NDJSON contract as a single crserve, partitioned across the fleet. Rows
// are routed by entity key on the ring — every entity's rows land on one
// backend, so grouping and resolution happen there — and each backend
// receives its partition as one ordinary dataset request. Result lines
// are relayed verbatim as backends stream them; the per-backend summary
// lines are absorbed into one merged summary. A backend that dies
// mid-partition is marked down and its whole partition is retried on the
// next live backend, with results already relayed deduplicated by key.
func (c *Coordinator) handleDataset(w http.ResponseWriter, r *http.Request) {
	c.met.datasetRequests.Add(1)
	start := time.Now()
	sc := bufio.NewScanner(r.Body)
	bufSize := 64 << 10
	if int(c.cfg.MaxBodyBytes) < bufSize {
		bufSize = int(c.cfg.MaxBodyBytes)
	}
	sc.Buffer(make([]byte, bufSize), int(c.cfg.MaxBodyBytes))

	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			c.writeError(w, http.StatusBadRequest, codeBadRequest, "bad header line: "+err.Error())
			return
		}
		c.writeError(w, http.StatusBadRequest, codeBadRequest, "empty dataset: missing header line")
		return
	}
	headerLine := append([]byte(nil), sc.Bytes()...)
	var hdr datasetHeader
	if err := json.Unmarshal(headerLine, &hdr); err != nil {
		c.writeError(w, http.StatusBadRequest, codeBadRequest, "bad header line: "+err.Error())
		return
	}
	if len(hdr.Key) == 0 {
		c.writeError(w, http.StatusBadRequest, codeBadRequest, `header needs "key": [column, ...]`)
		return
	}
	if err := compileHeaderRules(&hdr.ruleSetJSON); err != nil {
		c.writeError(w, http.StatusBadRequest, codeBadRules, err.Error())
		return
	}
	keyFn, err := rowKeyFunc(&hdr)
	if err != nil {
		c.writeError(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}

	// Partition rows by the ring alone, ignoring liveness: an entity's rows
	// must stay together no matter when a backend flaps, and send-time
	// failover moves whole partitions so entities never split.
	partitions := make([][][]byte, len(c.backends))
	var rows int64
	var rowErr error
	for sc.Scan() {
		line := sc.Bytes()
		if len(strings.TrimSpace(string(line))) == 0 {
			continue
		}
		key, err := keyFn(line)
		if err != nil {
			rowErr = fmt.Errorf("row %d: %w", rows+1, err)
			break
		}
		rows++
		idx := c.ring.Owner(key)
		partitions[idx] = append(partitions[idx], append([]byte(nil), line...))
	}
	if rowErr == nil {
		rowErr = sc.Err()
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	em := &emitter{out: w, w: flusher, mergeNs: func(ns int64) { c.met.datasetMergeNs.Add(ns) }}
	enc := json.NewEncoder(w)
	acc := &dsAccount{}

	if rowErr != nil {
		// Mirror the single-node contract: an input failure aborts before
		// any partition is dispatched — an error-truncated stream must not
		// produce normal-looking results from part of its rows.
		em.mu.Lock()
		enc.Encode(&resultLine{Error: &errorJSON{Code: codeBadRequest, Message: "stream aborted: " + rowErr.Error()}})
		em.mu.Unlock()
	} else {
		var wg sync.WaitGroup
		for idx, part := range partitions {
			if len(part) == 0 {
				continue
			}
			wg.Add(1)
			go func(idx int, part [][]byte) {
				defer wg.Done()
				c.sendPartition(r.Context(), headerLine, idx, part, em, acc)
			}(idx, part)
		}
		wg.Wait()
	}

	wall := time.Since(start)
	sum := &datasetSummaryJSON{
		Rows:          rows,
		Entities:      acc.entities,
		Resolved:      acc.resolved,
		Invalid:       acc.invalid,
		Failed:        acc.failed,
		Cached:        acc.cached,
		Windows:       acc.windows,
		SplitEntities: acc.split,
		Dropped:       acc.dropped,
		WallUs:        int64(wall / time.Microsecond),
	}
	if wall > 0 {
		sum.RowsPerSec = float64(rows) / wall.Seconds()
	}
	em.mu.Lock()
	enc.Encode(map[string]*datasetSummaryJSON{"summary": sum})
	em.mu.Unlock()
	if flusher != nil {
		flusher.Flush()
	}
}

// rowKeyFunc builds the per-row routing key extractor for the header's row
// shape: JSON objects keyed by column name, or arrays aligned to the
// declared column list. Key cells decode through the same scalar codec as
// the dataset engine, so "1" and "1.0" route (and group) identically.
func rowKeyFunc(hdr *datasetHeader) (func(line []byte) (string, error), error) {
	if len(hdr.Columns) == 0 {
		keys := hdr.Key
		return func(line []byte) (string, error) {
			var obj map[string]json.RawMessage
			if err := json.Unmarshal(line, &obj); err != nil {
				return "", err
			}
			parts := make([]string, len(keys))
			for i, k := range keys {
				raw, ok := obj[k]
				if !ok {
					return "", fmt.Errorf("missing key field %q", k)
				}
				v, err := relation.FromJSONScalar(raw)
				if err != nil {
					return "", fmt.Errorf("key field %q: %w", k, err)
				}
				parts[i] = v.String()
			}
			return strings.Join(parts, keySep), nil
		}, nil
	}
	pos := make(map[string]int, len(hdr.Columns))
	for i, col := range hdr.Columns {
		pos[strings.TrimSpace(col)] = i
	}
	keyIdx := make([]int, len(hdr.Key))
	need := 0
	for i, k := range hdr.Key {
		idx, ok := pos[k]
		if !ok {
			return nil, fmt.Errorf("key column %q not in columns %v", k, hdr.Columns)
		}
		keyIdx[i] = idx
		if idx+1 > need {
			need = idx + 1
		}
	}
	return func(line []byte) (string, error) {
		var arr []json.RawMessage
		if err := json.Unmarshal(line, &arr); err != nil {
			return "", err
		}
		if len(arr) < need {
			return "", fmt.Errorf("row has %d values, key needs %d", len(arr), need)
		}
		parts := make([]string, len(keyIdx))
		for i, idx := range keyIdx {
			v, err := relation.FromJSONScalar(arr[idx])
			if err != nil {
				return "", fmt.Errorf("key column %d: %w", idx, err)
			}
			parts[i] = v.String()
		}
		return strings.Join(parts, keySep), nil
	}, nil
}

// sendPartition streams one backend's row partition through the fleet,
// walking backends until the partition completes or every backend has been
// tried. Retries re-send the whole partition — resolution is pure, so
// replays are safe — and skip result lines whose key was already relayed
// by an earlier (failed) attempt; duplicate keys within one attempt are
// legitimate window splits and pass through.
func (c *Coordinator) sendPartition(ctx context.Context, headerLine []byte, primaryIdx int, part [][]byte, em *emitter, acc *dsAccount) {
	prevEmitted := make(map[string]bool)
	var tried uint64
	idx := primaryIdx
	attempt := 0
	for {
		if tried&(1<<uint(idx)) != 0 || !c.backends[idx].up.Load() {
			tried |= 1 << uint(idx)
			next, ok := nextUntried(tried, idx, len(c.backends))
			if !ok {
				c.giveUpPartition(part, em, acc)
				return
			}
			idx = next
			continue
		}
		b := c.backends[idx]
		if attempt > 0 {
			b.retries.Add(1)
		}
		tried |= 1 << uint(idx)

		done, emitted := c.streamPartition(ctx, headerLine, b, part, em, acc, prevEmitted)
		for k := range emitted {
			prevEmitted[k] = true
		}
		if done {
			return
		}
		attempt++
		next, ok := nextUntried(tried, idx, len(c.backends))
		if !ok {
			c.giveUpPartition(part, em, acc)
			return
		}
		idx = next
	}
}

// nextUntried returns the next backend index after from (wrapping) whose
// tried bit is clear.
func nextUntried(tried uint64, from, n int) (int, bool) {
	for i := 1; i <= n; i++ {
		idx := (from + i) % n
		if tried&(1<<uint(idx)) == 0 {
			return idx, true
		}
	}
	return 0, false
}

// giveUpPartition accounts a partition no live backend could take: its
// unanswered rows are counted as dropped and one in-band error line tells
// the client which slice of the input went unresolved.
func (c *Coordinator) giveUpPartition(part [][]byte, em *emitter, acc *dsAccount) {
	c.met.noBackend.Add(1)
	acc.mu.Lock()
	acc.dropped += int64(len(part))
	acc.mu.Unlock()
	line, _ := json.Marshal(&resultLine{Error: &errorJSON{
		Code:    codeNoBackend,
		Message: fmt.Sprintf("no live backend for a partition of %d rows", len(part)),
	}})
	em.emitRaw(line)
}

// streamPartition performs one attempt: POST the partition to b and relay
// its result lines. It reports whether the partition completed (summary
// seen or stream ended cleanly) and which keys were relayed this attempt.
func (c *Coordinator) streamPartition(ctx context.Context, headerLine []byte, b *backend, part [][]byte, em *emitter, acc *dsAccount, prevEmitted map[string]bool) (done bool, emitted map[string]bool) {
	emitted = make(map[string]bool)

	var body bytes.Buffer
	body.Write(headerLine)
	body.WriteByte('\n')
	for _, line := range part {
		body.Write(line)
		body.WriteByte('\n')
	}

	b.requests.Add(1)
	reqCtx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, b.url+"/v1/resolve/dataset", &body)
	if err != nil {
		line, _ := json.Marshal(&resultLine{Error: &errorJSON{Code: codeBadRequest, Message: err.Error()}})
		em.emitRaw(line)
		acc.mu.Lock()
		acc.dropped += int64(len(part))
		acc.mu.Unlock()
		return true, emitted
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		c.markDown(b)
		return false, emitted
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Header-level verdict: deterministic on every backend, so don't
		// retry. Relay the envelope in-band once for this partition.
		var env struct {
			Error *errorJSON `json:"error"`
		}
		code, msg := codeBadRequest, fmt.Sprintf("backend answered %d", resp.StatusCode)
		if json.NewDecoder(resp.Body).Decode(&env) == nil && env.Error != nil {
			code, msg = env.Error.Code, env.Error.Message
		}
		line, _ := json.Marshal(&resultLine{Error: &errorJSON{Code: code, Message: msg}})
		em.emitRaw(line)
		acc.mu.Lock()
		acc.dropped += int64(len(part))
		acc.mu.Unlock()
		return true, emitted
	}

	rs := bufio.NewScanner(resp.Body)
	rs.Buffer(make([]byte, 64<<10), int(c.cfg.MaxBodyBytes))
	for rs.Scan() {
		line := rs.Bytes()
		if len(line) == 0 {
			continue
		}
		start := time.Now()
		var dl dsLine
		if err := json.Unmarshal(line, &dl); err != nil {
			c.met.datasetMergeNs.Add(int64(time.Since(start)))
			continue
		}
		if dl.Summary != nil {
			var sum datasetSummaryJSON
			if json.Unmarshal(dl.Summary, &sum) == nil {
				acc.mu.Lock()
				acc.windows += sum.Windows
				acc.split += sum.SplitEntities
				acc.dropped += sum.Dropped
				acc.mu.Unlock()
			}
			c.met.datasetMergeNs.Add(int64(time.Since(start)))
			continue
		}
		if prevEmitted[dl.ID] {
			// A failed earlier attempt already relayed this entity; the
			// replay recomputed it (resolution is deterministic) — drop the
			// duplicate line.
			c.met.datasetMergeNs.Add(int64(time.Since(start)))
			continue
		}
		emitted[dl.ID] = true
		acc.mu.Lock()
		acc.entities++
		switch {
		case len(dl.Error) > 0 && string(dl.Error) != "null":
			acc.failed++
		case dl.Valid:
			acc.resolved++
		default:
			acc.invalid++
		}
		if dl.Cached {
			acc.cached++
		}
		acc.mu.Unlock()
		c.met.datasetMergeNs.Add(int64(time.Since(start)))
		em.emitRaw(line)
	}
	if err := rs.Err(); err != nil {
		c.markDown(b)
		return false, emitted
	}
	return true, emitted
}
