package shard

import (
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Live-entity affinity: entity keys are client-chosen, so plain ring
// placement on the key IS the affinity — every coordinator routes the same
// key to the same backend with no id tagging and no coordinator state. The
// per-entity resolution state lives only on that owner: it is not
// replicated, so upserts are never retried on a sibling (a replay could
// double-apply rows if the first attempt actually landed), and a failed-
// over key starts a fresh entity on the next backend in its preference
// list from whatever rows arrive after the failover.

// handleEntityProxy serves POST /v1/entity/{key}/rows and GET/DELETE
// /v1/entity/{key}: forward to the key's ring owner verbatim. An
// unreachable owner answers 502 — the change-data-capture feed decides
// whether to replay its delta once the owner (or its successor) is back.
func (c *Coordinator) handleEntityProxy(w http.ResponseWriter, r *http.Request) {
	c.met.entityRequests.Add(1)
	key := r.PathValue("key")
	if key == "" {
		c.writeError(w, http.StatusBadRequest, codeBadRequest, "empty entity key")
		return
	}
	b, _ := c.route(key, 0)
	if b == nil {
		c.met.noBackend.Add(1)
		c.writeError(w, http.StatusServiceUnavailable, codeNoBackend, "no live backend for entity")
		return
	}
	path := "/v1/entity/" + key
	if strings.HasSuffix(r.URL.Path, "/rows") {
		path += "/rows"
	}

	var status int
	var data []byte
	switch r.Method {
	case http.MethodPost:
		body, ok := c.readBody(w, r)
		if !ok {
			return
		}
		var err error
		status, data, _, err = c.post(r.Context(), b, path, "application/json", body)
		if err != nil {
			c.writeError(w, http.StatusBadGateway, codeBackendDown, err.Error())
			return
		}
	default: // GET, DELETE
		b.requests.Add(1)
		req, err := http.NewRequestWithContext(r.Context(), r.Method, b.url+path, nil)
		if err != nil {
			c.writeError(w, http.StatusBadGateway, codeBackendDown, err.Error())
			return
		}
		resp, err := c.cfg.Client.Do(req)
		if err != nil {
			c.markDown(b)
			c.writeError(w, http.StatusBadGateway, codeBackendDown,
				fmt.Sprintf("entity owner unreachable: %v", err))
			return
		}
		defer resp.Body.Close()
		status = resp.StatusCode
		if data, err = io.ReadAll(resp.Body); err != nil {
			c.markDown(b)
			c.writeError(w, http.StatusBadGateway, codeBackendDown, err.Error())
			return
		}
	}
	if status == http.StatusNoContent {
		w.WriteHeader(status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
}
