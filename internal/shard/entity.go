package shard

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
)

// Live-entity affinity and replication: entity keys are client-chosen, so
// plain ring placement on the key IS the affinity — every coordinator routes
// the same key to the same primary owner with no id tagging. The per-entity
// resolution state is kept warm on one sibling too: every acknowledged
// upsert is forwarded asynchronously, in acknowledgment order, to the ring's
// next live owner as an ordinary log-replay POST (see replica.go). When the
// primary dies mid-stream, GETs and upserts fail over along the key's
// preference list and land on that replica.
//
// Semantics under failover are at-least-once, never silent loss: a delta
// whose first attempt died on the wire may be replayed on the replica even
// though the primary had applied it (the acknowledgment was lost, so the
// client-visible contract holds), and a replica that missed forwards serves
// with an explicit replica_lag count in the body plus an
// X-Crshard-Replica-Lag header rather than passing stale state off as
// current. A fully replicated entity answers byte-identically on either
// backend. GET 404s are relayed verbatim — retrying a 404 on a sibling
// would resurrect deleted entities — and DELETE invalidates the replica
// through the same ordered queue as the upserts it may trail.

// handleEntityProxy serves POST /v1/entity/{key}/rows and GET/DELETE
// /v1/entity/{key} with replica failover on transport errors, under the
// unified retry policy and budget.
func (c *Coordinator) handleEntityProxy(w http.ResponseWriter, r *http.Request) {
	c.met.entityRequests.Add(1)
	key := r.PathValue("key")
	if key == "" {
		c.writeError(w, http.StatusBadRequest, codeBadRequest, "empty entity key")
		return
	}
	path := "/v1/entity/" + key
	if strings.HasSuffix(r.URL.Path, "/rows") {
		path += "/rows"
	}
	var body []byte
	contentType := ""
	if r.Method == http.MethodPost {
		var ok bool
		if body, ok = c.readBody(w, r); !ok {
			return
		}
		contentType = "application/json"
	}

	primary := c.ring.Owners(key, 1)[0]
	ctx := r.Context()
	var cancel func()
	defer func() {
		if cancel != nil {
			cancel()
		}
	}()
	var tried uint64
	attempt := 0
	for {
		b, idx := c.route(key, tried)
		if b == nil {
			c.met.noBackend.Add(1)
			c.writeError(w, http.StatusServiceUnavailable, codeNoBackend, "no live backend for entity")
			return
		}
		if tried != 0 {
			b.retries.Add(1)
		}
		tried |= 1 << uint(idx)
		status, data, retryable, err := c.do(ctx, b, r.Method, path, contentType, body)
		if err != nil {
			if !retryable {
				c.writeError(w, http.StatusBadGateway, codeBackendDown, err.Error())
				return
			}
			// Transport failure: the next backend on the preference list is
			// the warm replica. Back off first — the owner may only have
			// blipped, and its replica needs a moment to absorb in-flight
			// forwards.
			attempt++
			if cancel == nil {
				ctx, cancel = c.retryBudgetCtx(r.Context())
			}
			if serr := c.retry.Sleep(ctx, attempt, c.jitter); serr != nil {
				c.budgetExhausted(w, err)
				return
			}
			continue
		}
		c.finishEntity(w, r.Method, key, path, idx, primary, status, data, body)
		return
	}
}

// finishEntity relays a backend's answer to the client and runs the
// replication bookkeeping it implies: acknowledged upserts enqueue their
// replica forward, deletes enqueue the replica invalidation, and a serving
// backend that is behind the acknowledged delta count gets the gap stamped
// onto the response.
func (c *Coordinator) finishEntity(w http.ResponseWriter, method, key, path string, idx, primary, status int, data, body []byte) {
	if idx != primary {
		switch method {
		case http.MethodGet:
			c.met.replicaFailoverGet.Add(1)
		case http.MethodPost:
			c.met.replicaFailoverUpsert.Add(1)
		case http.MethodDelete:
			c.met.replicaFailoverDelete.Add(1)
		}
	}
	if len(c.backends) > 1 {
		switch {
		case method == http.MethodPost && status < 300:
			if c.repl.onAck(key, idx, replJob{method: http.MethodPost, path: path, body: body, servedIdx: idx}) {
				go c.drainRepl(key)
			}
		case method == http.MethodDelete && (status < 300 || status == http.StatusNotFound):
			// Even a 404 invalidates the replica: the serving backend may
			// have lost the entity (restart) while the replica still holds
			// it — without the forward, the next failover would resurrect a
			// deleted entity.
			if c.repl.onDelete(key, replJob{method: http.MethodDelete, path: path, servedIdx: idx}) {
				go c.drainRepl(key)
			}
		}
	}
	if lag := c.repl.lag(key, idx); lag > 0 {
		w.Header().Set("X-Crshard-Replica-Lag", strconv.FormatInt(lag, 10))
		if method != http.MethodDelete && status < 300 {
			if stamped, ok := injectReplicaLag(data, lag); ok {
				data = stamped
			}
		}
	}
	if status == http.StatusNoContent {
		w.WriteHeader(status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
}

// injectReplicaLag stamps the serving backend's replication gap into a JSON
// object body. Only called when lag > 0, so a current backend's response
// passes through byte-identical.
func injectReplicaLag(data []byte, lag int64) ([]byte, bool) {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil || m == nil {
		return nil, false
	}
	m["replica_lag"] = json.RawMessage(strconv.FormatInt(lag, 10))
	out, err := json.Marshal(m)
	if err != nil {
		return nil, false
	}
	return out, true
}
