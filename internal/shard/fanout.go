package shard

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"net/http"
	"sync"
	"time"

	"conflictres/internal/httpstream"
)

// batchJob is one entity line in flight through the fleet.
type batchJob struct {
	line  []byte // raw entity line (owned copy)
	index int    // zero-based index in the client's stream
	id    string // entity id (may be empty)
	key   string // routing key
	tried uint64 // bitmask of backend indices already attempted
}

// emitter serializes merged result lines onto the client response and
// accounts merge-path time. Batch merging re-encodes restamped structs via
// enc; dataset merging relays raw backend lines via out.
type emitter struct {
	mu      sync.Mutex
	out     io.Writer
	enc     *json.Encoder
	w       http.Flusher
	mergeNs func(int64)
}

func (e *emitter) emit(v any) {
	start := time.Now()
	e.mu.Lock()
	e.enc.Encode(v)
	if e.w != nil {
		e.w.Flush()
	}
	e.mu.Unlock()
	e.mergeNs(int64(time.Since(start)))
}

// handleBatch is POST /v1/resolve/batch on the coordinator: the same NDJSON
// contract as a single crserve, fanned out across the fleet. Entities are
// routed by id on the ring, grouped into per-backend sub-batches of
// ChunkEntities lines, and pipelined with at most Pipeline sub-batches in
// flight per backend (the reader blocks past that, so client back-pressure
// reaches the slowest backend). Results stream back in completion order
// restamped with the client's entity indices. A backend that dies
// mid-sub-batch is marked down and the sub-batch's unanswered entities are
// retried on the next owner along the ring.
func (c *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	c.met.batchRequests.Add(1)
	// Merged result lines are gated until the client's request stream is
	// fully received (HTTP/1.1 cannot full-duplex; see httpstream), then
	// stream as backends answer.
	gw := httpstream.NewGatedWriter(w)
	defer gw.Open() // cover reads that stop short of body EOF
	sc := bufio.NewScanner(gw.BodyEOF(r.Body))
	bufSize := 64 << 10
	if int(c.cfg.MaxBodyBytes) < bufSize {
		bufSize = int(c.cfg.MaxBodyBytes)
	}
	sc.Buffer(make([]byte, bufSize), int(c.cfg.MaxBodyBytes))

	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			c.writeError(w, http.StatusBadRequest, codeBadRequest, "bad header line: "+err.Error())
			return
		}
		c.writeError(w, http.StatusBadRequest, codeBadRequest, "empty batch: missing header line")
		return
	}
	headerLine := append([]byte(nil), sc.Bytes()...)
	var hdr batchHeader
	if err := json.Unmarshal(headerLine, &hdr); err != nil {
		c.writeError(w, http.StatusBadRequest, codeBadRequest, "bad header line: "+err.Error())
		return
	}
	if err := compileHeaderRules(&hdr.ruleSetJSON); err != nil {
		c.writeError(w, http.StatusBadRequest, codeBadRules, err.Error())
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	em := &emitter{enc: json.NewEncoder(gw), w: gw, mergeNs: func(ns int64) { c.met.batchMergeNs.Add(ns) }}

	// One pipelining semaphore per backend: a slot is held for the full
	// life of a sub-batch POST, so at most Pipeline requests are in flight
	// per backend and the reader stalls (back-pressuring the client)
	// rather than buffering unbounded work for a slow backend.
	sems := make([]chan struct{}, len(c.backends))
	for i := range sems {
		sems[i] = make(chan struct{}, c.cfg.Pipeline)
	}
	var wg sync.WaitGroup
	dispatch := func(bIdx int, jobs []batchJob) {
		sems[bIdx] <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.sendSubBatch(r.Context(), headerLine, bIdx, jobs, em, sems)
		}()
	}

	pending := make(map[int][]batchJob, len(c.backends))
	index := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		i := index
		index++
		var ek entityKey
		if err := json.Unmarshal(line, &ek); err != nil {
			em.emit(&resultLine{Index: &i, Error: &errorJSON{Code: codeBadRequest, Message: "bad entity line: " + err.Error()}})
			continue
		}
		key := ek.ID
		if key == "" {
			// Anonymous entities spread by stream position; they still get
			// stable retry siblings from the ring.
			key = fmt.Sprintf("#%d", i)
		}
		b, bIdx := c.route(key, 0)
		if b == nil {
			c.met.noBackend.Add(1)
			em.emit(&resultLine{ID: ek.ID, Index: &i, Error: &errorJSON{Code: codeNoBackend, Message: "no live backend for entity"}})
			continue
		}
		pending[bIdx] = append(pending[bIdx], batchJob{
			line: append([]byte(nil), line...), index: i, id: ek.ID, key: key,
		})
		if len(pending[bIdx]) >= c.cfg.ChunkEntities {
			dispatch(bIdx, pending[bIdx])
			pending[bIdx] = nil
		}
	}
	scanErr := sc.Err()
	for bIdx, jobs := range pending {
		if len(jobs) > 0 {
			dispatch(bIdx, jobs)
		}
	}
	wg.Wait()
	if scanErr != nil {
		i := index
		em.emit(&resultLine{Index: &i, Error: &errorJSON{Code: codeBadRequest, Message: "stream aborted: " + scanErr.Error()}})
	}
}

// sendSubBatch posts one sub-batch to backend bIdx and merges its streamed
// results. The caller has already reserved a pipeline slot on bIdx; the
// slot is released when the sub-batch settles on that backend (success,
// deterministic failure, or mark-down). Entities left unanswered by a
// transport failure are rerouted to their next untried live owner —
// recursively, so a chain of failures walks each entity's preference list
// until it lands or exhausts the fleet.
func (c *Coordinator) sendSubBatch(ctx context.Context, headerLine []byte, bIdx int, jobs []batchJob, em *emitter, sems []chan struct{}) {
	b := c.backends[bIdx]
	release := func() { <-sems[bIdx] }

	var body bytes.Buffer
	body.Grow(len(headerLine) + 1)
	body.Write(headerLine)
	body.WriteByte('\n')
	for _, j := range jobs {
		body.Write(j.line)
		body.WriteByte('\n')
	}

	b.requests.Add(1)
	reqCtx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, b.url+"/v1/resolve/batch", &body)
	if err != nil {
		release()
		em.emitJobErrors(jobs, codeBadRequest, err.Error())
		return
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		c.markDown(b)
		release()
		c.rerouteJobs(ctx, headerLine, bIdx, jobs, em, sems)
		return
	}
	defer resp.Body.Close()

	if resp.StatusCode != http.StatusOK {
		// A non-200 batch response is a header-level verdict (bad rules,
		// oversized line): deterministic, so retrying a sibling would just
		// repeat it. Relay the envelope per entity.
		var env struct {
			Error *errorJSON `json:"error"`
		}
		code, msg := codeBadRequest, fmt.Sprintf("backend answered %d", resp.StatusCode)
		if json.NewDecoder(resp.Body).Decode(&env) == nil && env.Error != nil {
			code, msg = env.Error.Code, env.Error.Message
		}
		release()
		em.emitJobErrors(jobs, code, msg)
		return
	}

	seen := make([]bool, len(jobs))
	rs := bufio.NewScanner(resp.Body)
	bufSize := 64 << 10
	rs.Buffer(make([]byte, bufSize), int(c.cfg.MaxBodyBytes))
	for rs.Scan() {
		line := rs.Bytes()
		if len(line) == 0 {
			continue
		}
		start := time.Now()
		var res resultLine
		if err := json.Unmarshal(line, &res); err != nil || res.Index == nil || *res.Index < 0 || *res.Index >= len(jobs) {
			// An unattributable line: nothing to restamp it onto. Skip it;
			// its entity will be rerouted as unanswered below if the stream
			// also failed, or error-reported on clean end.
			c.met.batchMergeNs.Add(int64(time.Since(start)))
			continue
		}
		j := jobs[*res.Index]
		seen[*res.Index] = true
		res.Index, res.ID = &j.index, j.id
		c.met.batchMergeNs.Add(int64(time.Since(start)))
		em.emit(&res)
	}
	release()

	var unanswered []batchJob
	for i, ok := range seen {
		if !ok {
			unanswered = append(unanswered, jobs[i])
		}
	}
	if len(unanswered) == 0 {
		return
	}
	if err := rs.Err(); err != nil {
		// The stream died under us: the backend (or the path to it) is
		// gone. Everything unanswered moves to the next owner.
		c.markDown(b)
		c.rerouteJobs(ctx, headerLine, bIdx, unanswered, em, sems)
		return
	}
	// Clean end of stream with missing results — a backend bug rather than
	// a transport failure; report rather than loop.
	em.emitJobErrors(unanswered, codeBackendDown, "backend closed the stream without answering")
}

// emitJobErrors answers a set of jobs with the same in-band error.
func (e *emitter) emitJobErrors(jobs []batchJob, code, msg string) {
	for _, j := range jobs {
		i := j.index
		e.emit(&resultLine{ID: j.id, Index: &i, Error: &errorJSON{Code: code, Message: msg}})
	}
}

// rerouteJobs re-dispatches failed jobs to each entity's next untried live
// owner, grouping per target so a retried sub-batch stays batched. Entities
// with no remaining owner answer no_backend in-band.
func (c *Coordinator) rerouteJobs(ctx context.Context, headerLine []byte, failedIdx int, jobs []batchJob, em *emitter, sems []chan struct{}) {
	regroup := make(map[int][]batchJob)
	for _, j := range jobs {
		j.tried |= 1 << uint(failedIdx)
		nb, nIdx := c.route(j.key, j.tried)
		if nb == nil {
			c.met.noBackend.Add(1)
			i := j.index
			em.emit(&resultLine{ID: j.id, Index: &i, Error: &errorJSON{Code: codeNoBackend, Message: "no live backend for entity after retries"}})
			continue
		}
		nb.retries.Add(1)
		regroup[nIdx] = append(regroup[nIdx], j)
	}
	if len(regroup) == 0 {
		return
	}
	// Pace the retry wave under the unified backoff policy: replaying the
	// sub-batch instantly just marches the same burst one ring step per
	// failure. Attempt depth is how many backends this wave has burned.
	attempt := bits.OnesCount64(jobs[0].tried | 1<<uint(failedIdx))
	if err := c.retry.Sleep(ctx, attempt, c.jitter); err != nil {
		for _, g := range regroup {
			em.emitJobErrors(g, codeBackendDown, "retry abandoned: "+err.Error())
		}
		return
	}
	for nIdx, g := range regroup {
		// Take the target's pipeline slot like any first-try sub-batch; the
		// failed backend's slot was already released, so slot acquisition
		// is ordered and cannot deadlock.
		sems[nIdx] <- struct{}{}
		c.sendSubBatch(ctx, headerLine, nIdx, g, em, sems)
	}
}
