package shard

import (
	"context"
	"net/http"
	"sync"
)

// Live-entity replication. The coordinator is the fleet's only writer for a
// key (ring placement gives every coordinator the same owner), so it can
// also be the key's replication pump: each acknowledged upsert is forwarded
// asynchronously — as a plain log-replay POST of the same body — to the
// ring's next live owner, keeping a warm replica whose registry state is
// reproducible from the identical delta sequence. On owner death, reads and
// writes fail over along the preference list and land on that replica.
//
// The tracker also carries the bookkeeping that makes staleness explicit:
// per key it counts deltas acknowledged to clients (acked) and deltas known
// to have been applied per backend (have). A backend serving the key with
// have < acked is behind, and the gap is surfaced to clients as
// replica_lag instead of silently serving stale state.

// replJob is one pending replication forward for a key, in FIFO order.
type replJob struct {
	method string // POST (upsert replay) or DELETE (replica invalidation)
	path   string
	body   []byte // nil for DELETE
	// servedIdx is the backend that already holds this delta (it answered
	// the client); the forward targets a different backend.
	servedIdx int
}

// replState is one key's replication bookkeeping, guarded by replTracker.mu
// (the queue is tiny and operations are O(1); a per-key mutex would buy
// nothing but lock-ordering rules).
type replState struct {
	acked    int64         // deltas acknowledged to clients
	have     map[int]int64 // backend index -> deltas applied there
	queue    []replJob
	draining bool // a drain goroutine owns the queue head
}

// replTracker maps entity keys to their replication state.
type replTracker struct {
	mu sync.Mutex
	m  map[string]*replState
}

func newReplTracker() *replTracker {
	return &replTracker{m: make(map[string]*replState)}
}

// state returns the key's entry, creating it if needed. Callers hold t.mu.
func (t *replTracker) state(key string) *replState {
	st, ok := t.m[key]
	if !ok {
		st = &replState{have: make(map[int]int64)}
		t.m[key] = st
	}
	return st
}

// onAck records a delta acknowledged to the client by backend idx and
// enqueues its replication job. It reports whether the caller should start
// a drain goroutine (exactly one drains a key at a time, preserving the
// delta order the replica replays).
func (t *replTracker) onAck(key string, idx int, job replJob) (startDrain bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.state(key)
	st.acked++
	st.have[idx]++
	st.queue = append(st.queue, job)
	if st.draining {
		return false
	}
	st.draining = true
	return true
}

// onDelete records a client-visible delete acknowledged by backend idx and
// enqueues the replica invalidation. The counters reset: the next upsert
// under the key is a fresh entity.
func (t *replTracker) onDelete(key string, job replJob) (startDrain bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.state(key)
	st.acked = 0
	st.have = make(map[int]int64)
	st.queue = append(st.queue, job)
	if st.draining {
		return false
	}
	st.draining = true
	return true
}

// pop hands the drain goroutine the key's next job, or clears the draining
// flag and reports done. An empty, fully replicated entry is dropped so the
// map does not grow with dead keys.
func (t *replTracker) pop(key string) (replJob, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.m[key]
	if !ok || len(st.queue) == 0 {
		if ok {
			st.draining = false
			if st.acked == 0 {
				delete(t.m, key)
			}
		}
		return replJob{}, false
	}
	job := st.queue[0]
	st.queue = st.queue[1:]
	return job, true
}

// onReplicated records a successful forward: backend idx now also holds the
// delta (no-op for deletes, whose counters were already reset).
func (t *replTracker) onReplicated(key string, idx int, method string) {
	if method != http.MethodPost {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if st, ok := t.m[key]; ok {
		st.have[idx]++
	}
}

// lag reports how many acknowledged deltas backend idx is missing for key.
// Zero means idx is current (or the key is untracked — a fresh coordinator
// cannot know better than the backend it asked).
func (t *replTracker) lag(key string, idx int) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.m[key]
	if !ok {
		return 0
	}
	if d := st.acked - st.have[idx]; d > 0 {
		return d
	}
	return 0
}

// pending reports queued-but-unsent replication jobs across all keys (the
// crshard_replica_pending gauge; tests poll it to flush replication).
func (t *replTracker) pending() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, st := range t.m {
		n += len(st.queue)
	}
	return n
}

// replTarget picks where a key's replica lives: the first live backend on
// the preference list other than the one that served the delta.
func (c *Coordinator) replTarget(key string, servedIdx int) (*backend, int) {
	for _, idx := range c.ring.Owners(key, c.ring.Backends()) {
		if idx == servedIdx {
			continue
		}
		if c.backends[idx].up.Load() {
			return c.backends[idx], idx
		}
	}
	return nil, -1
}

// drainRepl forwards a key's queued deltas until the queue empties. One
// goroutine per key at a time (see onAck), so the replica receives deltas
// in acknowledgment order. Each forward retries under the unified policy
// within the retry budget; a forward that still fails is dropped — the
// replica's lag stays visible through the have/acked gap rather than the
// queue growing without bound behind a dead fleet.
func (c *Coordinator) drainRepl(key string) {
	for {
		select {
		case <-c.healthStop:
			// Coordinator shutting down: abandon the queue (lag persists).
			return
		default:
		}
		job, ok := c.repl.pop(key)
		if !ok {
			return
		}
		c.forwardReplJob(key, job)
	}
}

// forwardReplJob sends one replication job, retrying with backoff within
// the retry budget. Failure is terminal for the job, never for the drain.
func (c *Coordinator) forwardReplJob(key string, job replJob) {
	ctx, cancel := c.retryBudgetCtx(context.Background())
	defer cancel()
	attempt := 0
	tried := uint64(1) << uint(job.servedIdx) // never replicate back to the server
	for {
		var b *backend
		var idx int
		// Prefer the canonical replica target; fall back along the
		// preference list as attempts mark backends down.
		for _, oidx := range c.ring.Owners(key, c.ring.Backends()) {
			if tried&(1<<uint(oidx)) != 0 || !c.backends[oidx].up.Load() {
				continue
			}
			b, idx = c.backends[oidx], oidx
			break
		}
		if b == nil {
			c.met.replicaForwardFailures.Add(1)
			return
		}
		contentType := ""
		if job.method == http.MethodPost {
			contentType = "application/json"
		}
		status, _, retryable, err := c.do(ctx, b, job.method, job.path, contentType, job.body)
		if err == nil && status < 500 {
			// 2xx applied the delta, and a DELETE answered 404 already has
			// nothing to invalidate. Any other 4xx (e.g. 409 racing a
			// client write) is final for this backend — the log replay
			// cannot make progress by retrying it.
			if status < 300 || (job.method == http.MethodDelete && status == http.StatusNotFound) {
				c.met.replicaForwards.Add(1)
				c.repl.onReplicated(key, idx, job.method)
			} else {
				c.met.replicaForwardFailures.Add(1)
			}
			return
		}
		if err != nil && !retryable {
			c.met.replicaForwardFailures.Add(1)
			return
		}
		// Transport failure or 5xx: back off and try the next candidate
		// (the failed backend joins tried only on transport mark-down; a
		// 5xx may be transient ErrBusy contention on the same backend).
		if err != nil {
			tried |= 1 << uint(idx)
		}
		attempt++
		if serr := c.retry.Sleep(ctx, attempt, c.jitter); serr != nil {
			c.met.replicaForwardFailures.Add(1)
			return
		}
	}
}
