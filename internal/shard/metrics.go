package shard

import (
	"fmt"
	"io"
	"sync/atomic"
)

// metrics holds the coordinator's monotonic counters; per-backend counters
// live on the backend structs and are rendered alongside.
type metrics struct {
	resolveRequests  atomic.Int64
	batchRequests    atomic.Int64
	datasetRequests  atomic.Int64
	validateRequests atomic.Int64
	sessionRequests  atomic.Int64
	entityRequests   atomic.Int64
	errorResponses   atomic.Int64

	// noBackend counts entities that exhausted every live backend and were
	// answered with an in-band no_backend error.
	noBackend atomic.Int64

	// retryBudgetExhausted counts requests shed because their failover
	// budget ran out while backends kept failing — load the coordinator
	// refused to keep hammering a degraded fleet with.
	retryBudgetExhausted atomic.Int64

	// Live-entity replication: forwards that reached a replica, forwards
	// dropped after exhausting their budget (the replica's lag persists),
	// and requests served by a non-primary backend after failover.
	replicaForwards        atomic.Int64
	replicaForwardFailures atomic.Int64
	replicaFailoverGet     atomic.Int64
	replicaFailoverUpsert  atomic.Int64
	replicaFailoverDelete  atomic.Int64

	// Merge-path time: nanoseconds spent decoding, restamping, and writing
	// backend result lines into the merged client response.
	batchMergeNs   atomic.Int64
	datasetMergeNs atomic.Int64
}

// write renders the coordinator counters plus the per-backend counters and
// ring occupancy in Prometheus text exposition format.
func (m *metrics) write(w io.Writer, ring *Ring, backends []*backend, replicaPending int) {
	fmt.Fprintf(w, "# TYPE crshard_requests_total counter\n")
	fmt.Fprintf(w, "crshard_requests_total{endpoint=\"resolve\"} %d\n", m.resolveRequests.Load())
	fmt.Fprintf(w, "crshard_requests_total{endpoint=\"batch\"} %d\n", m.batchRequests.Load())
	fmt.Fprintf(w, "crshard_requests_total{endpoint=\"dataset\"} %d\n", m.datasetRequests.Load())
	fmt.Fprintf(w, "crshard_requests_total{endpoint=\"validate\"} %d\n", m.validateRequests.Load())
	fmt.Fprintf(w, "crshard_requests_total{endpoint=\"session\"} %d\n", m.sessionRequests.Load())
	fmt.Fprintf(w, "crshard_requests_total{endpoint=\"entity\"} %d\n", m.entityRequests.Load())
	fmt.Fprintf(w, "# TYPE crshard_error_responses_total counter\n")
	fmt.Fprintf(w, "crshard_error_responses_total %d\n", m.errorResponses.Load())
	fmt.Fprintf(w, "# TYPE crshard_no_backend_total counter\n")
	fmt.Fprintf(w, "crshard_no_backend_total %d\n", m.noBackend.Load())
	fmt.Fprintf(w, "# TYPE crshard_retry_budget_exhausted_total counter\n")
	fmt.Fprintf(w, "crshard_retry_budget_exhausted_total %d\n", m.retryBudgetExhausted.Load())
	fmt.Fprintf(w, "# TYPE crshard_replica_forwards_total counter\n")
	fmt.Fprintf(w, "crshard_replica_forwards_total %d\n", m.replicaForwards.Load())
	fmt.Fprintf(w, "# TYPE crshard_replica_forward_failures_total counter\n")
	fmt.Fprintf(w, "crshard_replica_forward_failures_total %d\n", m.replicaForwardFailures.Load())
	fmt.Fprintf(w, "# TYPE crshard_replica_failover_total counter\n")
	fmt.Fprintf(w, "crshard_replica_failover_total{op=\"get\"} %d\n", m.replicaFailoverGet.Load())
	fmt.Fprintf(w, "crshard_replica_failover_total{op=\"upsert\"} %d\n", m.replicaFailoverUpsert.Load())
	fmt.Fprintf(w, "crshard_replica_failover_total{op=\"delete\"} %d\n", m.replicaFailoverDelete.Load())
	fmt.Fprintf(w, "# TYPE crshard_replica_pending gauge\n")
	fmt.Fprintf(w, "crshard_replica_pending %d\n", replicaPending)
	fmt.Fprintf(w, "# TYPE crshard_merge_seconds_total counter\n")
	fmt.Fprintf(w, "crshard_merge_seconds_total{endpoint=\"batch\"} %g\n", float64(m.batchMergeNs.Load())/1e9)
	fmt.Fprintf(w, "crshard_merge_seconds_total{endpoint=\"dataset\"} %g\n", float64(m.datasetMergeNs.Load())/1e9)

	fmt.Fprintf(w, "# TYPE crshard_ring_backends gauge\n")
	fmt.Fprintf(w, "crshard_ring_backends %d\n", ring.Backends())
	fmt.Fprintf(w, "# TYPE crshard_ring_vnodes gauge\n")
	fmt.Fprintf(w, "crshard_ring_vnodes %d\n", ring.VNodes())
	fmt.Fprintf(w, "# TYPE crshard_ring_share gauge\n")
	for i, b := range backends {
		fmt.Fprintf(w, "crshard_ring_share{backend=%q} %g\n", b.url, ring.Share(i))
	}
	fmt.Fprintf(w, "# TYPE crshard_backend_up gauge\n")
	for _, b := range backends {
		up := 0
		if b.up.Load() {
			up = 1
		}
		fmt.Fprintf(w, "crshard_backend_up{backend=%q} %d\n", b.url, up)
	}
	fmt.Fprintf(w, "# TYPE crshard_backend_requests_total counter\n")
	for _, b := range backends {
		fmt.Fprintf(w, "crshard_backend_requests_total{backend=%q} %d\n", b.url, b.requests.Load())
	}
	fmt.Fprintf(w, "# TYPE crshard_backend_errors_total counter\n")
	for _, b := range backends {
		fmt.Fprintf(w, "crshard_backend_errors_total{backend=%q} %d\n", b.url, b.errors.Load())
	}
	fmt.Fprintf(w, "# TYPE crshard_backend_retries_total counter\n")
	for _, b := range backends {
		fmt.Fprintf(w, "crshard_backend_retries_total{backend=%q} %d\n", b.url, b.retries.Load())
	}
}
