// Package shard implements the crshard coordinator: a stateless front door
// that consistent-hashes entity keys across a fleet of crserve backends and
// speaks the same /v1 wire contracts as a single server.
//
// The coordinator owns routing concerns only — it never resolves an entity
// itself. Batch streams are cut into per-backend sub-batches with bounded
// pipelining; dataset streams are partitioned row-by-row on the entity key
// so every entity's rows land on one backend; interactive sessions get
// affinity by embedding the owning backend's tag in the session id. A
// backend that fails mid-request is marked down and its in-flight work is
// retried on the next live owner along the ring ("retry-on-sibling"); a
// background health checker revives backends that come back.
package shard

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// hash64 is the ring's hash: FNV-1a over the key bytes, finished with an
// avalanche mix. Entity keys and vnode labels share it, which is fine —
// vnode labels contain a "#" joint that entity keys are free to contain
// too; collisions just co-locate keys.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer. Raw FNV-1a ends on a single multiply,
// so keys differing only in their last byte ("e1" vs "e2", "person-07" vs
// "person-08") land within a few multiples of the FNV prime of each other —
// sequential key families cluster onto one arc and one backend owns them
// all. The finalizer avalanches every input bit across the word, restoring
// uniform placement for exactly the key shapes datasets actually have.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// vnode is one virtual node: a point on the ring owned by a backend.
type vnode struct {
	hash uint64
	idx  int // backend index
}

// Ring is a consistent-hash ring over n backends with a fixed number of
// virtual nodes each. It is immutable after construction: membership is
// static for the coordinator's lifetime, and liveness is handled above the
// ring (Owners returns the full preference list; the caller skips backends
// it knows are down).
type Ring struct {
	n      int
	vnodes []vnode
}

// NewRing places vnodesPer virtual nodes per backend name on the ring.
// Vnode positions depend only on the name list, so every coordinator
// configured with the same backends routes identically — there is no
// shared state to agree on.
func NewRing(names []string, vnodesPer int) (*Ring, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("shard: ring needs at least one backend")
	}
	if vnodesPer <= 0 {
		return nil, fmt.Errorf("shard: vnodes per backend must be positive, got %d", vnodesPer)
	}
	r := &Ring{n: len(names), vnodes: make([]vnode, 0, len(names)*vnodesPer)}
	seen := make(map[uint64]string, len(names)*vnodesPer)
	for i, name := range names {
		for v := 0; v < vnodesPer; v++ {
			h := hash64(fmt.Sprintf("%s#%d", name, v))
			if prev, dup := seen[h]; dup {
				// A 64-bit collision between vnode labels is effectively a
				// config error (duplicate backend names produce them for
				// every vnode); refuse rather than silently shadowing.
				return nil, fmt.Errorf("shard: vnode hash collision between %q and %q (duplicate backend?)", prev, name)
			}
			seen[h] = name
			r.vnodes = append(r.vnodes, vnode{hash: h, idx: i})
		}
	}
	sort.Slice(r.vnodes, func(a, b int) bool { return r.vnodes[a].hash < r.vnodes[b].hash })
	return r, nil
}

// Backends returns the number of backends on the ring.
func (r *Ring) Backends() int { return r.n }

// VNodes returns the total number of virtual nodes on the ring.
func (r *Ring) VNodes() int { return len(r.vnodes) }

// Owners returns the key's preference list: up to n distinct backend
// indices, clockwise from the key's ring position. The first entry is the
// key's primary; the rest are the retry-on-sibling order. n > Backends()
// is clamped.
func (r *Ring) Owners(key string, n int) []int {
	if n > r.n {
		n = r.n
	}
	h := hash64(key)
	start := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	out := make([]int, 0, n)
	seen := make(map[int]bool, n)
	for i := 0; i < len(r.vnodes) && len(out) < n; i++ {
		vn := r.vnodes[(start+i)%len(r.vnodes)]
		if !seen[vn.idx] {
			seen[vn.idx] = true
			out = append(out, vn.idx)
		}
	}
	return out
}

// Owner returns the key's primary backend index.
func (r *Ring) Owner(key string) int { return r.Owners(key, 1)[0] }

// Share returns the fraction of the hash space whose primary owner is
// backend idx — the ring-occupancy gauge. Shares sum to 1 across backends;
// with enough vnodes each backend's share approaches 1/n.
func (r *Ring) Share(idx int) float64 {
	var owned uint64
	for i, vn := range r.vnodes {
		if vn.idx != idx {
			continue
		}
		// vn owns the arc from the previous vnode (exclusive) to itself:
		// keys hash-search to the first vnode at or after them.
		prev := r.vnodes[(i+len(r.vnodes)-1)%len(r.vnodes)].hash
		owned += vn.hash - prev // wraps correctly for i == 0
	}
	return float64(owned) / math.Pow(2, 64)
}
