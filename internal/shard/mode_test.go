package shard

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
)

// freeModeBody renders a constraint-free sourced resolve request under the
// named mode; the coordinator must forward every mode/trust/source field
// verbatim.
func freeModeBody(t testing.TB, id, mode string) []byte {
	t.Helper()
	req := map[string]any{
		"schema": []string{"name", "city"},
		"trust":  []string{`"hq" > "mirror"`},
		"entity": map[string]any{
			"id":      id,
			"tuples":  []any{[]any{"e", "LA"}, []any{"e", "NY"}},
			"sources": []string{"mirror", "hq"},
		},
	}
	if mode != "" {
		req["mode"] = mode
	}
	return marshalLine(t, req)
}

// TestShardModeParity: resolution modes, trust mappings and source tags ride
// the coordinator unchanged — every mode's sharded answer is byte-identical
// to a single node's, and unknown modes surface the backend's structured
// 400 unchanged.
func TestShardModeParity(t *testing.T) {
	urls := []string{newBackendURL(t), newBackendURL(t)}
	_, curl := newShard(t, urls, nil)
	single := newBackendURL(t)

	for _, mode := range []string{"", "sat", "latest-writer-wins", "highest-trust", "consensus"} {
		for i := 0; i < 4; i++ {
			body := freeModeBody(t, "e"+mode+string(rune('a'+i)), mode)
			resp, got := postJSON(t, curl+"/v1/resolve", body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("mode %q: coordinator status %d: %s", mode, resp.StatusCode, got)
			}
			resp, want := postJSON(t, single+"/v1/resolve", body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("mode %q: single-node status %d: %s", mode, resp.StatusCode, want)
			}
			var gm, wm map[string]json.RawMessage
			if err := json.Unmarshal(got, &gm); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(want, &wm); err != nil {
				t.Fatal(err)
			}
			for _, field := range []string{"valid", "resolved", "tuple", "rounds"} {
				if !bytes.Equal(gm[field], wm[field]) {
					t.Fatalf("mode %q field %s: coordinator %s, single node %s",
						mode, field, gm[field], wm[field])
				}
			}
		}
	}

	resp, data := postJSON(t, curl+"/v1/resolve", freeModeBody(t, "bad", "most-recent"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown mode via coordinator: status %d: %s", resp.StatusCode, data)
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(data, &env); err != nil || env.Error.Code != "unknown_mode" {
		t.Fatalf("unknown-mode envelope lost in forwarding: %s (%v)", data, err)
	}
}

// TestShardBatchModeParity: the batch header's mode reaches every backend in
// the fan-out; sharded per-entity results match a single node's.
func TestShardBatchModeParity(t *testing.T) {
	urls := []string{newBackendURL(t), newBackendURL(t)}
	_, curl := newShard(t, urls, func(c *Config) { c.ChunkEntities = 2 })
	single := newBackendURL(t)

	var buf bytes.Buffer
	buf.Write(marshalLine(t, map[string]any{
		"schema": []string{"name", "city"},
		"mode":   "latest-writer-wins",
	}))
	buf.WriteByte('\n')
	for i := 0; i < 8; i++ {
		buf.Write(marshalLine(t, map[string]any{
			"id":     string(rune('a' + i)),
			"tuples": []any{[]any{"e", "LA"}, []any{"e", "NY"}},
		}))
		buf.WriteByte('\n')
	}
	body := buf.Bytes()

	collect := func(url string) map[string]string {
		t.Helper()
		resp, data := postJSON(t, url+"/v1/resolve/batch", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch status %d: %s", resp.StatusCode, data)
		}
		out := map[string]string{}
		dec := json.NewDecoder(bytes.NewReader(data))
		for dec.More() {
			var line struct {
				ID    string `json:"id"`
				Tuple []any  `json:"tuple"`
			}
			if err := dec.Decode(&line); err != nil {
				t.Fatal(err)
			}
			b, _ := json.Marshal(line.Tuple)
			out[line.ID] = string(b)
		}
		return out
	}
	sharded, base := collect(curl), collect(single)
	if len(sharded) != 8 || len(base) != 8 {
		t.Fatalf("got %d sharded / %d baseline lines", len(sharded), len(base))
	}
	for id, want := range base {
		if sharded[id] != want {
			t.Fatalf("entity %s: coordinator %s, single node %s", id, sharded[id], want)
		}
		if want != `["e","NY"]` {
			t.Fatalf("entity %s: latest-writer-wins not applied: %s", id, want)
		}
	}
}

// TestShardEntityModeSticky: the live-entity mode rides the ring too — a
// mode flip answers the backend's 409 through the coordinator.
func TestShardEntityModeSticky(t *testing.T) {
	urls := []string{newBackendURL(t), newBackendURL(t)}
	_, curl := newShard(t, urls, nil)

	upsert := func(mode string, row []any, src string) (*http.Response, []byte) {
		t.Helper()
		req := map[string]any{
			"schema":  []string{"name", "city"},
			"trust":   []string{`"hq" > "mirror"`},
			"rows":    []any{row},
			"sources": []string{src},
		}
		if mode != "" {
			req["mode"] = mode
		}
		return postJSON(t, curl+"/v1/entity/sticky/rows", marshalLine(t, req))
	}

	resp, data := upsert("highest-trust", []any{"e", "NY"}, "hq")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: status %d: %s", resp.StatusCode, data)
	}
	resp, data = upsert("highest-trust", []any{"e", "LA"}, "mirror")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("extend: status %d: %s", resp.StatusCode, data)
	}
	var st struct {
		Tuple []any `json:"tuple"`
	}
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Tuple) != 2 || st.Tuple[1] != "NY" {
		t.Fatalf("highest-trust entity state = %v, want hq's NY", st.Tuple)
	}
	resp, data = upsert("consensus", []any{"e", "LA"}, "mirror")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("mode flip: status %d: %s, want 409", resp.StatusCode, data)
	}
}
