package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"conflictres"
	"conflictres/internal/backoff"
)

// Error codes the coordinator adds on top of the backend envelope.
const (
	codeBadRequest = "bad_request"
	codeBadRules   = "invalid_rules"
	codeTooLarge   = "body_too_large"
	// codeNoBackend answers work that exhausted every live backend: the
	// entity was routed, retried along its preference list, and no owner
	// could take it.
	codeNoBackend = "no_backend"
	// codeBackendDown answers session traffic whose owning backend is
	// unreachable — sessions are stateful, so there is no sibling to retry
	// on; the client re-creates the session (or the fleet restores it from
	// a snapshot, see server.RestoreSessions).
	codeBackendDown = "backend_unavailable"
	// codeBadSessionID answers session ids that do not carry a known
	// backend tag — the id was not minted by this fleet.
	codeBadSessionID = "session_not_found"
	// codeRetryBudget answers work that was still failing over when its
	// per-request retry budget ran out: the fleet is degraded but the
	// coordinator stops hammering survivors and sheds the request instead.
	codeRetryBudget = "retry_budget_exhausted"
)

// backend is one crserve instance in the fleet.
type backend struct {
	url string // normalized base URL, no trailing slash
	// tag prefixes every session id minted through this backend, giving
	// session affinity without coordinator state: it survives coordinator
	// restarts because it is derived from the backend URL alone.
	tag string
	// up is flipped down on transport errors (mark-down) and back up by
	// the health checker; routing skips down backends.
	up atomic.Bool

	requests atomic.Int64 // HTTP requests sent to this backend
	errors   atomic.Int64 // transport failures talking to this backend
	retries  atomic.Int64 // jobs this backend received as retries after a sibling failed
}

// Config tunes the coordinator.
type Config struct {
	// Addr is the listen address (default ":8371").
	Addr string
	// Backends lists the crserve base URLs (required, e.g.
	// "http://10.0.0.1:8372"). Order is irrelevant: placement depends only
	// on the URL set, so every coordinator with the same set routes alike.
	Backends []string
	// VNodes is the virtual nodes per backend on the ring (default 64).
	VNodes int
	// Pipeline bounds the in-flight sub-batches per backend (default 4).
	Pipeline int
	// ChunkEntities is the batch sub-request size: how many entities ride
	// in one POST to a backend (default 32).
	ChunkEntities int
	// Timeout bounds one backend request (default 2m — it covers a whole
	// sub-batch or dataset partition, not a single entity).
	Timeout time.Duration
	// HealthInterval is the backend probe cadence (default 2s).
	HealthInterval time.Duration
	// MaxBodyBytes caps request bodies and NDJSON lines (default 8 MiB).
	MaxBodyBytes int64
	// ShutdownGrace bounds how long Serve waits for in-flight requests on
	// shutdown (default 10s).
	ShutdownGrace time.Duration
	// RetryBase is the first backoff delay when a keyed request, an entity
	// proxy hop or a replication forward retries after a transport failure
	// (default 25ms). Delays double per attempt with ±50% jitter.
	RetryBase time.Duration
	// RetryCap bounds one backoff delay (default 1s).
	RetryCap time.Duration
	// RetryBudget bounds the total time one client request may spend
	// failing over before the coordinator sheds it with 503
	// retry_budget_exhausted (default 15s). The clock starts at the first
	// transport failure — a slow-but-healthy first attempt still gets the
	// full Timeout — and is a context deadline threaded through
	// Coordinator.post, so it also cuts a retry attempt that outlives it.
	RetryBudget time.Duration
	// Client overrides the HTTP client used to talk to backends (tests).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8371"
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 4
	}
	if c.ChunkEntities <= 0 {
		c.ChunkEntities = 32
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Minute
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.ShutdownGrace <= 0 {
		c.ShutdownGrace = 10 * time.Second
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 25 * time.Millisecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = time.Second
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 15 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// Coordinator fronts a crserve fleet behind the single-server wire API.
type Coordinator struct {
	cfg      Config
	ring     *Ring
	backends []*backend
	byTag    map[string]*backend
	met      *metrics
	mux      *http.ServeMux
	retry    backoff.Policy
	repl     *replTracker

	// rndMu guards rnd: jitter draws come from request goroutines, the
	// health loop and replication drains concurrently.
	rndMu sync.Mutex
	rnd   *rand.Rand

	healthStop chan struct{}
	closeOnce  sync.Once
}

// jitter draws one uniform float64 in [0, 1) for backoff jitter.
func (c *Coordinator) jitter() float64 {
	c.rndMu.Lock()
	defer c.rndMu.Unlock()
	return c.rnd.Float64()
}

// New builds a coordinator over the configured backends. It starts a
// background health checker; call Close when done.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("shard: no backends configured")
	}
	if len(cfg.Backends) > 64 {
		// Retry bookkeeping packs tried backends into a uint64 bitmask.
		return nil, fmt.Errorf("shard: at most 64 backends supported, got %d", len(cfg.Backends))
	}
	names := make([]string, len(cfg.Backends))
	for i, u := range cfg.Backends {
		names[i] = strings.TrimRight(u, "/")
	}
	ring, err := NewRing(names, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:   cfg,
		ring:  ring,
		met:   &metrics{},
		mux:   http.NewServeMux(),
		byTag: make(map[string]*backend, len(names)),
		retry: backoff.New(cfg.RetryBase, cfg.RetryCap),
		repl:  newReplTracker(),
		// Seeded per coordinator so a fleet of coordinators restarted
		// together does not retry or probe in lockstep.
		rnd:        rand.New(rand.NewSource(time.Now().UnixNano())),
		healthStop: make(chan struct{}),
	}
	for _, u := range names {
		b := &backend{url: u, tag: fmt.Sprintf("%08x", uint32(hash64(u)))}
		if prev, dup := c.byTag[b.tag]; dup {
			return nil, fmt.Errorf("shard: backend tag collision between %q and %q", prev.url, u)
		}
		b.up.Store(true) // optimistic: the first failed request marks down
		c.byTag[b.tag] = b
		c.backends = append(c.backends, b)
	}
	go c.healthLoop()
	c.mux.HandleFunc("POST /v1/resolve", c.handleResolve)
	c.mux.HandleFunc("POST /v1/validate", c.handleValidate)
	c.mux.HandleFunc("POST /v1/resolve/batch", c.handleBatch)
	c.mux.HandleFunc("POST /v1/resolve/dataset", c.handleDataset)
	c.mux.HandleFunc("POST /v1/session", c.handleSessionCreate)
	c.mux.HandleFunc("GET /v1/session/{id}", c.handleSessionProxy)
	c.mux.HandleFunc("POST /v1/session/{id}/answer", c.handleSessionProxy)
	c.mux.HandleFunc("DELETE /v1/session/{id}", c.handleSessionProxy)
	c.mux.HandleFunc("POST /v1/entity/{key}/rows", c.handleEntityProxy)
	c.mux.HandleFunc("GET /v1/entity/{key}", c.handleEntityProxy)
	c.mux.HandleFunc("DELETE /v1/entity/{key}", c.handleEntityProxy)
	c.mux.HandleFunc("GET /healthz", c.handleHealthz)
	c.mux.HandleFunc("GET /readyz", c.handleReadyz)
	c.mux.HandleFunc("GET /metrics", c.handleMetrics)
	return c, nil
}

// Handler returns the root handler (what tests mount on httptest).
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Close stops the health checker. In-flight requests are unaffected.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() { close(c.healthStop) })
}

// ListenAndServe serves until ctx is cancelled, then shuts down gracefully.
func (c *Coordinator) ListenAndServe(ctx context.Context) error {
	srv := &http.Server{
		Addr:              c.cfg.Addr,
		Handler:           c.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	defer c.Close()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return fmt.Errorf("shard: %w", err)
	case <-ctx.Done():
	}
	shCtx, cancel := context.WithTimeout(context.Background(), c.cfg.ShutdownGrace)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		return fmt.Errorf("shard: shutdown: %w", err)
	}
	return nil
}

// healthLoop probes every backend around each HealthInterval: /readyz 200
// means ready; a backend without /readyz (older build) falls back to
// /healthz, so the coordinator still drives mixed fleets. Probe failure
// marks down, probe success revives a marked-down backend.
//
// Cadence is per backend, jittered, and backs off exponentially (capped at
// 8× the interval) while a backend stays down: a fleet restart would
// otherwise have every coordinator hammering every dead backend in
// lockstep at a fixed beat. The ticker runs at a quarter of the interval
// only to check which backends are due.
func (c *Coordinator) healthLoop() {
	downPolicy := backoff.New(c.cfg.HealthInterval, 8*c.cfg.HealthInterval)
	quantum := c.cfg.HealthInterval / 4
	if quantum <= 0 {
		quantum = c.cfg.HealthInterval
	}
	failures := make([]int, len(c.backends))
	next := make([]time.Time, len(c.backends)) // zero: due immediately
	t := time.NewTicker(quantum)
	defer t.Stop()
	for {
		select {
		case <-c.healthStop:
			return
		case <-t.C:
			now := time.Now()
			for i, b := range c.backends {
				if now.Before(next[i]) {
					continue
				}
				if c.probe(b) {
					b.up.Store(true)
					failures[i] = 0
					// Jitter the healthy cadence too (attempt 1 of the down
					// policy is one jittered HealthInterval).
					next[i] = now.Add(downPolicy.Delay(1, c.jitter))
				} else {
					b.up.Store(false)
					failures[i]++
					next[i] = now.Add(downPolicy.Delay(failures[i], c.jitter))
				}
			}
		}
	}
}

func (c *Coordinator) probe(b *backend) bool {
	probeOne := func(path string) (int, bool) {
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.HealthInterval)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+path, nil)
		if err != nil {
			return 0, false
		}
		resp, err := c.cfg.Client.Do(req)
		if err != nil {
			return 0, false
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, true
	}
	code, ok := probeOne("/readyz")
	if ok && code == http.StatusNotFound {
		code, ok = probeOne("/healthz")
	}
	return ok && code == http.StatusOK
}

// markDown flips a backend down after a transport error; the health checker
// is the only path back up.
func (c *Coordinator) markDown(b *backend) {
	b.errors.Add(1)
	b.up.Store(false)
}

// route picks the first live, untried backend along key's preference list.
// tried is a bitmask of backend indices already attempted for this piece of
// work (the fleet is capped at 64 backends by this representation).
func (c *Coordinator) route(key string, tried uint64) (*backend, int) {
	for _, idx := range c.ring.Owners(key, c.ring.Backends()) {
		if tried&(1<<uint(idx)) != 0 {
			continue
		}
		if c.backends[idx].up.Load() {
			return c.backends[idx], idx
		}
	}
	return nil, -1
}

func (c *Coordinator) writeError(w http.ResponseWriter, status int, code, msg string) {
	c.met.errorResponses.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]*errorJSON{"error": {Code: code, Message: msg}})
}

// readBody reads a size-limited request body.
func (c *Coordinator) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			c.writeError(w, http.StatusRequestEntityTooLarge, codeTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
			return nil, false
		}
		c.writeError(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return nil, false
	}
	return body, true
}

// post sends body to backend b and returns the full response. Transport
// errors (request or body read) mark the backend down and report retryable.
func (c *Coordinator) post(ctx context.Context, b *backend, path, contentType string, body []byte) (status int, respBody []byte, retryable bool, err error) {
	return c.do(ctx, b, http.MethodPost, path, contentType, body)
}

// do is post generalized over the method (the entity proxy relays GET and
// DELETE through the same retry machinery). A nil body sends no payload.
func (c *Coordinator) do(ctx context.Context, b *backend, method, path, contentType string, body []byte) (status int, respBody []byte, retryable bool, err error) {
	b.requests.Add(1)
	ctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, b.url+path, rd)
	if err != nil {
		return 0, nil, false, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		c.markDown(b)
		return 0, nil, true, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		c.markDown(b)
		return 0, nil, true, err
	}
	return resp.StatusCode, data, false, nil
}

// retryBudgetCtx derives the per-request failover budget: attempts and
// their backoff pauses all charge against one deadline, so a degraded
// fleet sheds work instead of stacking unbounded retries.
func (c *Coordinator) retryBudgetCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, c.cfg.RetryBudget)
}

// budgetExhausted answers a request whose retry budget ran out mid-failover.
func (c *Coordinator) budgetExhausted(w http.ResponseWriter, err error) {
	c.met.retryBudgetExhausted.Add(1)
	c.writeError(w, http.StatusServiceUnavailable, codeRetryBudget,
		fmt.Sprintf("retry budget exhausted after %s: %v", c.cfg.RetryBudget, err))
}

// forwardKeyed relays one complete JSON request (resolve, validate) to the
// entity's owner, failing over to siblings on transport errors under the
// unified retry policy: capped jittered backoff between attempts, all
// charged against the per-request retry budget. Resolution is a pure
// computation, so replaying the request on another backend is safe.
func (c *Coordinator) forwardKeyed(w http.ResponseWriter, r *http.Request, path string) {
	body, ok := c.readBody(w, r)
	if !ok {
		return
	}
	var req keyedRequest
	if err := json.Unmarshal(body, &req); err != nil {
		c.writeError(w, http.StatusBadRequest, codeBadRequest, "bad JSON: "+err.Error())
		return
	}
	key := req.Entity.ID
	if key == "" {
		// No entity id: route on the body so identical requests still hit
		// the same backend (and its result cache).
		key = fmt.Sprintf("%016x", hash64(string(body)))
	}
	ctx := r.Context()
	var cancel context.CancelFunc
	defer func() {
		if cancel != nil {
			cancel()
		}
	}()
	var tried uint64
	attempt := 0
	for {
		b, idx := c.route(key, tried)
		if b == nil {
			c.met.noBackend.Add(1)
			c.writeError(w, http.StatusServiceUnavailable, codeNoBackend, "no live backend for entity")
			return
		}
		if tried != 0 {
			b.retries.Add(1)
		}
		tried |= 1 << uint(idx)
		status, data, retryable, err := c.post(ctx, b, path, "application/json", body)
		if err != nil {
			if !retryable {
				c.writeError(w, http.StatusBadGateway, codeBackendDown, err.Error())
				return
			}
			attempt++
			if cancel == nil {
				// The budget clock starts at the first failure, covering
				// every backoff pause and retry attempt from here on.
				ctx, cancel = c.retryBudgetCtx(r.Context())
			}
			if serr := c.retry.Sleep(ctx, attempt, c.jitter); serr != nil {
				c.budgetExhausted(w, err)
				return
			}
			continue
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write(data)
		return
	}
}

func (c *Coordinator) handleResolve(w http.ResponseWriter, r *http.Request) {
	c.met.resolveRequests.Add(1)
	c.forwardKeyed(w, r, "/v1/resolve")
}

func (c *Coordinator) handleValidate(w http.ResponseWriter, r *http.Request) {
	c.met.validateRequests.Add(1)
	c.forwardKeyed(w, r, "/v1/validate")
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
}

// handleReadyz reports the coordinator ready while at least one backend is
// live: with an empty fleet every request would answer no_backend, so the
// coordinator should not receive traffic.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	up := 0
	for _, b := range c.backends {
		if b.up.Load() {
			up++
		}
	}
	st := struct {
		Ready         bool `json:"ready"`
		BackendsUp    int  `json:"backendsUp"`
		BackendsTotal int  `json:"backendsTotal"`
	}{Ready: up > 0, BackendsUp: up, BackendsTotal: len(c.backends)}
	w.Header().Set("Content-Type", "application/json")
	if !st.Ready {
		w.WriteHeader(http.StatusServiceUnavailable) //crlint:ignore wireerr readiness 503 carries the status JSON probes parse, not an error envelope
	}
	json.NewEncoder(w).Encode(&st)
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	c.met.write(w, c.ring, c.backends, c.repl.pending())
}

// compileHeaderRules validates a wire rule set locally so a bad header
// answers a clean 400 before any backend traffic or streamed output. The
// compiled set is discarded — backends compile (and cache) their own.
func compileHeaderRules(rs *ruleSetJSON) error {
	sch, err := conflictres.NewSchema(rs.Schema...)
	if err != nil {
		return err
	}
	_, err = conflictres.CompileRules(sch, rs.Currency, rs.CFDs)
	return err
}
