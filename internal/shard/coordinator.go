package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"conflictres"
)

// Error codes the coordinator adds on top of the backend envelope.
const (
	codeBadRequest = "bad_request"
	codeBadRules   = "invalid_rules"
	codeTooLarge   = "body_too_large"
	// codeNoBackend answers work that exhausted every live backend: the
	// entity was routed, retried along its preference list, and no owner
	// could take it.
	codeNoBackend = "no_backend"
	// codeBackendDown answers session traffic whose owning backend is
	// unreachable — sessions are stateful, so there is no sibling to retry
	// on; the client re-creates the session (or the fleet restores it from
	// a snapshot, see server.RestoreSessions).
	codeBackendDown = "backend_unavailable"
	// codeBadSessionID answers session ids that do not carry a known
	// backend tag — the id was not minted by this fleet.
	codeBadSessionID = "session_not_found"
)

// backend is one crserve instance in the fleet.
type backend struct {
	url string // normalized base URL, no trailing slash
	// tag prefixes every session id minted through this backend, giving
	// session affinity without coordinator state: it survives coordinator
	// restarts because it is derived from the backend URL alone.
	tag string
	// up is flipped down on transport errors (mark-down) and back up by
	// the health checker; routing skips down backends.
	up atomic.Bool

	requests atomic.Int64 // HTTP requests sent to this backend
	errors   atomic.Int64 // transport failures talking to this backend
	retries  atomic.Int64 // jobs this backend received as retries after a sibling failed
}

// Config tunes the coordinator.
type Config struct {
	// Addr is the listen address (default ":8371").
	Addr string
	// Backends lists the crserve base URLs (required, e.g.
	// "http://10.0.0.1:8372"). Order is irrelevant: placement depends only
	// on the URL set, so every coordinator with the same set routes alike.
	Backends []string
	// VNodes is the virtual nodes per backend on the ring (default 64).
	VNodes int
	// Pipeline bounds the in-flight sub-batches per backend (default 4).
	Pipeline int
	// ChunkEntities is the batch sub-request size: how many entities ride
	// in one POST to a backend (default 32).
	ChunkEntities int
	// Timeout bounds one backend request (default 2m — it covers a whole
	// sub-batch or dataset partition, not a single entity).
	Timeout time.Duration
	// HealthInterval is the backend probe cadence (default 2s).
	HealthInterval time.Duration
	// MaxBodyBytes caps request bodies and NDJSON lines (default 8 MiB).
	MaxBodyBytes int64
	// ShutdownGrace bounds how long Serve waits for in-flight requests on
	// shutdown (default 10s).
	ShutdownGrace time.Duration
	// Client overrides the HTTP client used to talk to backends (tests).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8371"
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 4
	}
	if c.ChunkEntities <= 0 {
		c.ChunkEntities = 32
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Minute
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.ShutdownGrace <= 0 {
		c.ShutdownGrace = 10 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// Coordinator fronts a crserve fleet behind the single-server wire API.
type Coordinator struct {
	cfg      Config
	ring     *Ring
	backends []*backend
	byTag    map[string]*backend
	met      *metrics
	mux      *http.ServeMux

	healthStop chan struct{}
	closeOnce  sync.Once
}

// New builds a coordinator over the configured backends. It starts a
// background health checker; call Close when done.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("shard: no backends configured")
	}
	if len(cfg.Backends) > 64 {
		// Retry bookkeeping packs tried backends into a uint64 bitmask.
		return nil, fmt.Errorf("shard: at most 64 backends supported, got %d", len(cfg.Backends))
	}
	names := make([]string, len(cfg.Backends))
	for i, u := range cfg.Backends {
		names[i] = strings.TrimRight(u, "/")
	}
	ring, err := NewRing(names, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:        cfg,
		ring:       ring,
		met:        &metrics{},
		mux:        http.NewServeMux(),
		byTag:      make(map[string]*backend, len(names)),
		healthStop: make(chan struct{}),
	}
	for _, u := range names {
		b := &backend{url: u, tag: fmt.Sprintf("%08x", uint32(hash64(u)))}
		if prev, dup := c.byTag[b.tag]; dup {
			return nil, fmt.Errorf("shard: backend tag collision between %q and %q", prev.url, u)
		}
		b.up.Store(true) // optimistic: the first failed request marks down
		c.byTag[b.tag] = b
		c.backends = append(c.backends, b)
	}
	go c.healthLoop()
	c.mux.HandleFunc("POST /v1/resolve", c.handleResolve)
	c.mux.HandleFunc("POST /v1/validate", c.handleValidate)
	c.mux.HandleFunc("POST /v1/resolve/batch", c.handleBatch)
	c.mux.HandleFunc("POST /v1/resolve/dataset", c.handleDataset)
	c.mux.HandleFunc("POST /v1/session", c.handleSessionCreate)
	c.mux.HandleFunc("GET /v1/session/{id}", c.handleSessionProxy)
	c.mux.HandleFunc("POST /v1/session/{id}/answer", c.handleSessionProxy)
	c.mux.HandleFunc("DELETE /v1/session/{id}", c.handleSessionProxy)
	c.mux.HandleFunc("POST /v1/entity/{key}/rows", c.handleEntityProxy)
	c.mux.HandleFunc("GET /v1/entity/{key}", c.handleEntityProxy)
	c.mux.HandleFunc("DELETE /v1/entity/{key}", c.handleEntityProxy)
	c.mux.HandleFunc("GET /healthz", c.handleHealthz)
	c.mux.HandleFunc("GET /readyz", c.handleReadyz)
	c.mux.HandleFunc("GET /metrics", c.handleMetrics)
	return c, nil
}

// Handler returns the root handler (what tests mount on httptest).
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Close stops the health checker. In-flight requests are unaffected.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() { close(c.healthStop) })
}

// ListenAndServe serves until ctx is cancelled, then shuts down gracefully.
func (c *Coordinator) ListenAndServe(ctx context.Context) error {
	srv := &http.Server{
		Addr:              c.cfg.Addr,
		Handler:           c.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	defer c.Close()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return fmt.Errorf("shard: %w", err)
	case <-ctx.Done():
	}
	shCtx, cancel := context.WithTimeout(context.Background(), c.cfg.ShutdownGrace)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		return fmt.Errorf("shard: shutdown: %w", err)
	}
	return nil
}

// healthLoop probes every backend each HealthInterval: /readyz 200 means
// ready; a backend without /readyz (older build) falls back to /healthz, so
// the coordinator still drives mixed fleets. Probe failure marks down,
// probe success revives a marked-down backend.
func (c *Coordinator) healthLoop() {
	t := time.NewTicker(c.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-c.healthStop:
			return
		case <-t.C:
			for _, b := range c.backends {
				b.up.Store(c.probe(b))
			}
		}
	}
}

func (c *Coordinator) probe(b *backend) bool {
	probeOne := func(path string) (int, bool) {
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.HealthInterval)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+path, nil)
		if err != nil {
			return 0, false
		}
		resp, err := c.cfg.Client.Do(req)
		if err != nil {
			return 0, false
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, true
	}
	code, ok := probeOne("/readyz")
	if ok && code == http.StatusNotFound {
		code, ok = probeOne("/healthz")
	}
	return ok && code == http.StatusOK
}

// markDown flips a backend down after a transport error; the health checker
// is the only path back up.
func (c *Coordinator) markDown(b *backend) {
	b.errors.Add(1)
	b.up.Store(false)
}

// route picks the first live, untried backend along key's preference list.
// tried is a bitmask of backend indices already attempted for this piece of
// work (the fleet is capped at 64 backends by this representation).
func (c *Coordinator) route(key string, tried uint64) (*backend, int) {
	for _, idx := range c.ring.Owners(key, c.ring.Backends()) {
		if tried&(1<<uint(idx)) != 0 {
			continue
		}
		if c.backends[idx].up.Load() {
			return c.backends[idx], idx
		}
	}
	return nil, -1
}

func (c *Coordinator) writeError(w http.ResponseWriter, status int, code, msg string) {
	c.met.errorResponses.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]*errorJSON{"error": {Code: code, Message: msg}})
}

// readBody reads a size-limited request body.
func (c *Coordinator) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			c.writeError(w, http.StatusRequestEntityTooLarge, codeTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
			return nil, false
		}
		c.writeError(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return nil, false
	}
	return body, true
}

// post sends body to backend b and returns the full response. Transport
// errors (request or body read) mark the backend down and report retryable.
func (c *Coordinator) post(ctx context.Context, b *backend, path, contentType string, body []byte) (status int, respBody []byte, retryable bool, err error) {
	b.requests.Add(1)
	ctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, false, err
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		c.markDown(b)
		return 0, nil, true, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		c.markDown(b)
		return 0, nil, true, err
	}
	return resp.StatusCode, data, false, nil
}

// forwardKeyed relays one complete JSON request (resolve, validate) to the
// entity's owner, retrying on siblings over transport errors. Resolution is
// a pure computation, so replaying the request on another backend is safe.
func (c *Coordinator) forwardKeyed(w http.ResponseWriter, r *http.Request, path string) {
	body, ok := c.readBody(w, r)
	if !ok {
		return
	}
	var req keyedRequest
	if err := json.Unmarshal(body, &req); err != nil {
		c.writeError(w, http.StatusBadRequest, codeBadRequest, "bad JSON: "+err.Error())
		return
	}
	key := req.Entity.ID
	if key == "" {
		// No entity id: route on the body so identical requests still hit
		// the same backend (and its result cache).
		key = fmt.Sprintf("%016x", hash64(string(body)))
	}
	var tried uint64
	for {
		b, idx := c.route(key, tried)
		if b == nil {
			c.met.noBackend.Add(1)
			c.writeError(w, http.StatusServiceUnavailable, codeNoBackend, "no live backend for entity")
			return
		}
		if tried != 0 {
			b.retries.Add(1)
		}
		tried |= 1 << uint(idx)
		status, data, retryable, err := c.post(r.Context(), b, path, "application/json", body)
		if err != nil {
			if retryable {
				continue
			}
			c.writeError(w, http.StatusBadGateway, codeBackendDown, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write(data)
		return
	}
}

func (c *Coordinator) handleResolve(w http.ResponseWriter, r *http.Request) {
	c.met.resolveRequests.Add(1)
	c.forwardKeyed(w, r, "/v1/resolve")
}

func (c *Coordinator) handleValidate(w http.ResponseWriter, r *http.Request) {
	c.met.validateRequests.Add(1)
	c.forwardKeyed(w, r, "/v1/validate")
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
}

// handleReadyz reports the coordinator ready while at least one backend is
// live: with an empty fleet every request would answer no_backend, so the
// coordinator should not receive traffic.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	up := 0
	for _, b := range c.backends {
		if b.up.Load() {
			up++
		}
	}
	st := struct {
		Ready         bool `json:"ready"`
		BackendsUp    int  `json:"backendsUp"`
		BackendsTotal int  `json:"backendsTotal"`
	}{Ready: up > 0, BackendsUp: up, BackendsTotal: len(c.backends)}
	w.Header().Set("Content-Type", "application/json")
	if !st.Ready {
		w.WriteHeader(http.StatusServiceUnavailable) //crlint:ignore wireerr readiness 503 carries the status JSON probes parse, not an error envelope
	}
	json.NewEncoder(w).Encode(&st)
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	c.met.write(w, c.ring, c.backends)
}

// compileHeaderRules validates a wire rule set locally so a bad header
// answers a clean 400 before any backend traffic or streamed output. The
// compiled set is discarded — backends compile (and cache) their own.
func compileHeaderRules(rs *ruleSetJSON) error {
	sch, err := conflictres.NewSchema(rs.Schema...)
	if err != nil {
		return err
	}
	_, err = conflictres.CompileRules(sch, rs.Currency, rs.CFDs)
	return err
}
