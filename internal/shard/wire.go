package shard

import "encoding/json"

// The coordinator speaks crserve's /v1 wire formats but never resolves
// anything itself, so it mirrors only the envelope fields it must inspect
// and keeps every value it merely relays as raw JSON — numeric fidelity
// (int vs float) and field contents pass through byte-identical.

// ruleSetJSON mirrors the shared rule-set header fields.
type ruleSetJSON struct {
	Schema   []string `json:"schema"`
	Currency []string `json:"currency,omitempty"`
	CFDs     []string `json:"cfds,omitempty"`
}

// batchHeader mirrors the first NDJSON line of a batch request.
type batchHeader struct {
	ruleSetJSON
	MaxRounds int `json:"maxRounds,omitempty"`
}

// datasetHeader mirrors the first NDJSON line of a dataset request.
type datasetHeader struct {
	ruleSetJSON
	Key        []string `json:"key"`
	Columns    []string `json:"columns,omitempty"`
	Sorted     bool     `json:"sorted,omitempty"`
	WindowRows int      `json:"windowRows,omitempty"`
	MaxRounds  int      `json:"maxRounds,omitempty"`
}

// entityKey pulls just the entity id out of an entity line or a
// single-resolve request body — all the coordinator needs for routing.
type entityKey struct {
	ID string `json:"id"`
}

// keyedRequest matches any /v1/resolve-shaped body far enough to route it.
type keyedRequest struct {
	Entity entityKey `json:"entity"`
}

// errorJSON mirrors the structured error envelope.
type errorJSON struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// resultLine mirrors one batch result line closely enough to restamp its
// index and id; everything else stays raw and re-encodes unchanged.
type resultLine struct {
	ID       string                     `json:"id,omitempty"`
	Index    *int                       `json:"index,omitempty"`
	Rows     int                        `json:"rows,omitempty"`
	Valid    bool                       `json:"valid"`
	Resolved map[string]json.RawMessage `json:"resolved,omitempty"`
	Tuple    []json.RawMessage          `json:"tuple,omitempty"`
	Rounds   int                        `json:"rounds,omitempty"`
	Timing   json.RawMessage            `json:"timing,omitempty"`
	Cached   bool                       `json:"cached,omitempty"`
	Error    *errorJSON                 `json:"error,omitempty"`
}

// dsLine classifies one dataset response line: result lines carry an id and
// outcome fields, the trailing summary line carries only "summary". The
// raw line is relayed verbatim; these fields just drive merge accounting.
type dsLine struct {
	ID      string          `json:"id"`
	Valid   bool            `json:"valid"`
	Cached  bool            `json:"cached"`
	Error   json.RawMessage `json:"error"`
	Summary json.RawMessage `json:"summary"`
}

// datasetSummaryJSON mirrors the dataset summary line for merging.
type datasetSummaryJSON struct {
	Rows          int64   `json:"rows"`
	Entities      int64   `json:"entities"`
	Resolved      int64   `json:"resolved"`
	Invalid       int64   `json:"invalid"`
	Failed        int64   `json:"failed"`
	Cached        int64   `json:"cached"`
	Windows       int64   `json:"windows"`
	SplitEntities int64   `json:"splitEntities,omitempty"`
	Dropped       int64   `json:"dropped,omitempty"`
	WallUs        int64   `json:"wallUs"`
	RowsPerSec    float64 `json:"rowsPerSec"`
}
