package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"conflictres/internal/fault"
	"conflictres/internal/server"
)

// liveBackend is a real in-process crserve whose listener the test can kill
// mid-fleet (newBackendURL keeps the server handle private).
type liveBackend struct {
	url string
	ts  *httptest.Server
}

func newLiveBackend(t testing.TB) *liveBackend {
	t.Helper()
	s := server.New(server.Config{})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return &liveBackend{url: ts.URL, ts: ts}
}

func liveRow(name string, kids int) []any {
	return []any{name, "working", "nurse", kids, "NY", "212", "10036", "Manhattan"}
}

// entityGetRaw fetches an entity through the coordinator keeping the raw
// bytes and headers, for byte-identity and replica-lag assertions.
func entityGetRaw(t testing.TB, baseURL, key string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/entity/" + key)
	if err != nil {
		t.Fatalf("entity get %s: %v", key, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("entity get %s: read: %v", key, err)
	}
	return resp, data
}

func entityDelete(t testing.TB, baseURL, key string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, baseURL+"/v1/entity/"+key, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("entity delete %s: %v", key, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

func waitCond(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEntityReplicationFailoverByteIdentical kills a key's owner after
// replication has flushed: the next read fails over to the warm replica and
// must answer byte-identical to the owner's last answer — the replica
// replayed the same delta log, so there is nothing to be stale about (no
// replica_lag header either).
func TestEntityReplicationFailoverByteIdentical(t *testing.T) {
	b0, b1 := newLiveBackend(t), newLiveBackend(t)
	backends := []*liveBackend{b0, b1}
	c, base := newShard(t, []string{b0.url, b1.url}, func(cfg *Config) {
		cfg.RetryBase = time.Millisecond
		cfg.RetryCap = 5 * time.Millisecond
	})

	const key = "edith-repl"
	for i := 0; i < 3; i++ {
		st, status := entityUpsert(t, base, key, []any{liveRow("Edith Repl", i)})
		if status != http.StatusOK {
			t.Fatalf("upsert %d: status %d, state %v", i, status, st)
		}
	}
	waitCond(t, "replication flush", func() bool {
		return c.met.replicaForwards.Load() == 3 && c.repl.pending() == 0
	})

	resp, before := entityGetRaw(t, base, key)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-kill get: status %d: %s", resp.StatusCode, before)
	}
	if h := resp.Header.Get("X-Crshard-Replica-Lag"); h != "" {
		t.Fatalf("flushed entity served with replica lag %q", h)
	}

	// Kill the owner's listener outright: the coordinator still believes it
	// is up, so the failover rides the transport-error path (mark-down,
	// backoff, next preference), not a routing shortcut.
	owner := c.ring.Owners(key, 1)[0]
	backends[owner].ts.Close()

	resp, after := entityGetRaw(t, base, key)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover get: status %d: %s", resp.StatusCode, after)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("replica state diverged from owner:\nowner   %s\nreplica %s", before, after)
	}
	if h := resp.Header.Get("X-Crshard-Replica-Lag"); h != "" {
		t.Fatalf("current replica served with replica lag %q", h)
	}
	if c.met.replicaFailoverGet.Load() == 0 {
		t.Fatal("failover read not counted in crshard_replica_failover_total{op=\"get\"}")
	}
	// Writes keep flowing on the replica, extending the same entity rather
	// than starting a fresh one.
	st, status := entityUpsert(t, base, key, []any{liveRow("Edith Repl", 7)})
	if status != http.StatusOK || st["created"] == true || st["rows"] != float64(4) {
		t.Fatalf("post-failover upsert: status %d, state %v", status, st)
	}
	if c.met.replicaFailoverUpsert.Load() == 0 {
		t.Fatal("failover write not counted in crshard_replica_failover_total{op=\"upsert\"}")
	}
}

// TestEntityReplicaLagSurfaced starves the replica of one forward and then
// fails over to it: the response must carry the gap explicitly — a
// replica_lag field in the body and the X-Crshard-Replica-Lag header —
// instead of passing one-row state off as current.
func TestEntityReplicaLagSurfaced(t *testing.T) {
	urls := []string{newBackendURL(t), newBackendURL(t)}
	c, base := newShard(t, urls, func(cfg *Config) {
		cfg.RetryBase = time.Millisecond
		cfg.RetryCap = 5 * time.Millisecond
		cfg.RetryBudget = 250 * time.Millisecond
	})

	const key = "edith-lag"
	if _, status := entityUpsert(t, base, key, []any{liveRow("Edith Lag", 0)}); status != http.StatusOK {
		t.Fatalf("upsert 0: status %d", status)
	}
	waitCond(t, "first forward", func() bool { return c.met.replicaForwards.Load() == 1 })

	// Down the replica: the second delta acks on the owner but its forward
	// is dropped after exhausting the budget, so the replica stays one
	// delta behind.
	owners := c.ring.Owners(key, 2)
	ownerIdx, replicaIdx := owners[0], owners[1]
	c.backends[replicaIdx].up.Store(false)
	if _, status := entityUpsert(t, base, key, []any{liveRow("Edith Lag", 1)}); status != http.StatusOK {
		t.Fatalf("upsert 1: status %d", status)
	}
	waitCond(t, "dropped forward", func() bool { return c.met.replicaForwardFailures.Load() == 1 })

	c.backends[replicaIdx].up.Store(true)
	c.backends[ownerIdx].up.Store(false)
	resp, body := entityGetRaw(t, base, key)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lagging replica get: status %d: %s", resp.StatusCode, body)
	}
	if h := resp.Header.Get("X-Crshard-Replica-Lag"); h != "1" {
		t.Fatalf("X-Crshard-Replica-Lag = %q, want \"1\"", h)
	}
	var st map[string]any
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("bad lagging body %s: %v", body, err)
	}
	if st["replica_lag"] != float64(1) {
		t.Fatalf("replica_lag = %v, want 1: %s", st["replica_lag"], body)
	}
	if st["rows"] != float64(1) {
		t.Fatalf("lagging replica rows = %v, want the 1 forwarded row: %s", st["rows"], body)
	}
}

// TestEntityDeleteInvalidatesReplica is the resurrection regression: DELETE
// must invalidate the sibling replica through the same ordered queue as the
// upserts, or the next owner death would bring the deleted entity back from
// the warm copy.
func TestEntityDeleteInvalidatesReplica(t *testing.T) {
	urls := []string{newBackendURL(t), newBackendURL(t)}
	c, base := newShard(t, urls, func(cfg *Config) {
		cfg.RetryBase = time.Millisecond
		cfg.RetryCap = 5 * time.Millisecond
	})

	const key = "edith-del"
	if _, status := entityUpsert(t, base, key, []any{liveRow("Edith Del", 0)}); status != http.StatusOK {
		t.Fatalf("upsert: status %d", status)
	}
	waitCond(t, "upsert forward", func() bool { return c.met.replicaForwards.Load() == 1 })

	if status := entityDelete(t, base, key); status != http.StatusOK {
		t.Fatalf("delete: status %d", status)
	}
	waitCond(t, "delete forward", func() bool { return c.met.replicaForwards.Load() == 2 })

	c.backends[c.ring.Owners(key, 1)[0]].up.Store(false)
	resp, body := entityGetRaw(t, base, key)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted entity resurrected on the replica: status %d: %s", resp.StatusCode, body)
	}
}

// TestEntityChaosAtLeastOnce streams deltas through a coordinator whose
// backend transport fails deterministically at random (internal/fault): no
// acknowledged row may be lost silently. After the storm settles, the
// served state plus its explicit replica_lag must cover every acknowledged
// delta — staleness is allowed only when declared. Runs under -race: client
// retries, health probes and replication drains all hammer the tracker.
func TestEntityChaosAtLeastOnce(t *testing.T) {
	inj := fault.New(fault.Config{Seed: 42, TransportErrorRate: 0.25, TruncateRate: 0.1})
	urls := []string{newBackendURL(t), newBackendURL(t)}
	c, base := newShard(t, urls, func(cfg *Config) {
		cfg.HealthInterval = 25 * time.Millisecond // probes revive storm-downed backends
		cfg.RetryBase = time.Millisecond
		cfg.RetryCap = 10 * time.Millisecond
		cfg.RetryBudget = 5 * time.Second
		cfg.Client = &http.Client{Transport: inj.RoundTripper(http.DefaultTransport)}
	})

	const key, total = "edith-chaos", 25
	acked := 0
	for i := 0; i < total; i++ {
		st, status := entityUpsert(t, base, key, []any{liveRow("Edith Chaos", i)})
		switch {
		case status == http.StatusOK:
			acked++
		case status >= http.StatusInternalServerError:
			// Shed (no_backend, retry budget): give the health loop a beat
			// to revive whatever the storm knocked over.
			time.Sleep(20 * time.Millisecond)
		default:
			t.Fatalf("upsert %d: unexpected status %d, state %v", i, status, st)
		}
	}
	if acked == 0 {
		t.Fatal("chaos transport acknowledged nothing")
	}
	if n := inj.CountersSnapshot().TransportErrors; n == 0 {
		t.Fatal("injector delivered no transport faults")
	}
	// Every acknowledged delta's forward reaches a terminal outcome
	// (replicated or dropped-with-visible-lag) — wait for the queue to dry
	// so the serving backend's bookkeeping is stable.
	waitCond(t, "replication settle", func() bool {
		return c.met.replicaForwards.Load()+c.met.replicaForwardFailures.Load() >= int64(acked) &&
			c.repl.pending() == 0
	})

	deadline := time.Now().Add(15 * time.Second)
	for {
		for _, b := range c.backends {
			b.up.Store(true)
		}
		resp, body := entityGetRaw(t, base, key)
		if resp.StatusCode == http.StatusOK {
			var st map[string]any
			if err := json.Unmarshal(body, &st); err != nil {
				t.Fatalf("bad final state %s: %v", body, err)
			}
			rows, _ := st["rows"].(float64)
			lag, _ := st["replica_lag"].(float64)
			// The core chaos invariant: acknowledged deltas are either in
			// the served state or declared missing. rows can exceed acked
			// (at-least-once replay after a lost acknowledgment), never
			// silently undershoot.
			if int(rows)+int(lag) < acked {
				t.Fatalf("acknowledged rows lost silently: rows=%v lag=%v acked=%d", rows, lag, acked)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("final read never succeeded: status %d: %s", resp.StatusCode, body)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The unified-retry metric families render (values are storm-dependent).
	rec := httptest.NewRecorder()
	c.handleMetrics(rec, nil)
	for _, want := range []string{
		"crshard_retry_budget_exhausted_total",
		"crshard_replica_forwards_total",
		"crshard_replica_forward_failures_total",
		fmt.Sprintf("crshard_replica_failover_total{op=%q}", "upsert"),
		"crshard_replica_pending 0",
	} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Fatalf("metrics missing %q:\n%s", want, rec.Body.String())
		}
	}
}
