package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"conflictres/internal/server"
)

// The fixtures mirror the server test suite's Edith wire forms (the paper's
// running example); the shard package cannot reach those unexported helpers,
// so it carries its own copies.

func edithWireRules() map[string]any {
	return map[string]any{
		"schema": []string{"name", "status", "job", "kids", "city", "AC", "zip", "county"},
		"currency": []string{
			`t1[status] = "working" & t2[status] = "retired" -> t1 <[status] t2`,
			`t1[status] = "retired" & t2[status] = "deceased" -> t1 <[status] t2`,
			`t1[kids] < t2[kids] -> t1 <[kids] t2`,
			`t1 <[status] t2 -> t1 <[job] t2`,
			`t1 <[status] t2 -> t1 <[AC] t2`,
			`t1 <[status] t2 -> t1 <[zip] t2`,
			`t1 <[city] t2 & t1 <[zip] t2 -> t1 <[county] t2`,
		},
		"cfds": []string{
			`AC = "213" => city = "LA"`,
			`AC = "212" => city = "NY"`,
		},
	}
}

func marshalLine(t testing.TB, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func edithEntity(i int) map[string]any {
	name := fmt.Sprintf("Edith %d", i)
	return map[string]any{"id": fmt.Sprintf("e%d", i), "tuples": []any{
		[]any{name, "working", "nurse", i % 4, "NY", "212", "10036", "Manhattan"},
		[]any{name, "retired", "n/a", i%4 + 3, "SFC", "415", "94924", "Dogtown"},
		[]any{name, "deceased", "n/a", nil, "LA", "213", "90058", "Vermont"},
	}}
}

func edithResolveBody(t testing.TB, i int) []byte {
	t.Helper()
	m := edithWireRules()
	m["entity"] = edithEntity(i)
	return marshalLine(t, m)
}

// edithBatchBody renders a batch request: rule-set header plus n entity lines.
func edithBatchBody(t testing.TB, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.Write(marshalLine(t, edithWireRules()))
	buf.WriteByte('\n')
	for i := 0; i < n; i++ {
		buf.Write(marshalLine(t, edithEntity(i)))
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// edithDatasetBody renders a dataset request: header with key columns plus
// three object rows per entity, rows of one entity adjacent (sorted input).
func edithDatasetBody(t testing.TB, n int) []byte {
	t.Helper()
	hdr := edithWireRules()
	hdr["key"] = []string{"name"}
	hdr["sorted"] = true
	var buf bytes.Buffer
	buf.Write(marshalLine(t, hdr))
	buf.WriteByte('\n')
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("Edith %d", i)
		rows := []map[string]any{
			{"name": name, "status": "working", "job": "nurse", "kids": i % 4, "city": "NY", "AC": "212", "zip": "10036", "county": "Manhattan"},
			{"name": name, "status": "retired", "job": "n/a", "kids": i%4 + 3, "city": "SFC", "AC": "415", "zip": "94924", "county": "Dogtown"},
			{"name": name, "status": "deceased", "job": "n/a", "kids": nil, "city": "LA", "AC": "213", "zip": "90058", "county": "Vermont"},
		}
		for _, row := range rows {
			buf.Write(marshalLine(t, row))
			buf.WriteByte('\n')
		}
	}
	return buf.Bytes()
}

// newBackendURL starts a real in-process crserve backend.
func newBackendURL(t testing.TB) string {
	t.Helper()
	s := server.New(server.Config{})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// newShard builds a coordinator over urls and mounts it on httptest. The
// health checker is parked (1h interval) so tests control liveness directly.
func newShard(t testing.TB, urls []string, mut func(*Config)) (*Coordinator, string) {
	t.Helper()
	cfg := Config{Backends: urls, HealthInterval: time.Hour}
	if mut != nil {
		mut(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)
	return c, ts.URL
}

// dyingBackend answers health probes normally but truncates every POST: it
// declares a large Content-Length, writes a partial line, and returns, so
// net/http kills the connection and the coordinator's read fails mid-stream.
func dyingBackend(t *testing.T) string {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet {
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"status":"ok"}`))
			return
		}
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("Content-Length", "1048576")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"id":"trunc`))
	}))
	t.Cleanup(ts.Close)
	return ts.URL
}

func postJSON(t testing.TB, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// postNDJSON posts an NDJSON stream and returns the non-empty response lines.
func postNDJSON(t testing.TB, url string, body []byte) (*http.Response, []string) {
	t.Helper()
	resp, err := http.Post(url, "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, l := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(l) != "" {
			lines = append(lines, l)
		}
	}
	return resp, lines
}

// collectBatch indexes batch result lines by client entity index, failing on
// duplicates or unattributed lines.
func collectBatch(t *testing.T, lines []string) map[int]resultLine {
	t.Helper()
	out := make(map[int]resultLine, len(lines))
	for _, l := range lines {
		var res resultLine
		if err := json.Unmarshal([]byte(l), &res); err != nil {
			t.Fatalf("bad result line %q: %v", l, err)
		}
		if res.Index == nil {
			t.Fatalf("result line without index: %q", l)
		}
		if _, dup := out[*res.Index]; dup {
			t.Fatalf("duplicate result for index %d", *res.Index)
		}
		out[*res.Index] = res
	}
	return out
}

func requireSameResults(t *testing.T, n int, sharded, single map[int]resultLine) {
	t.Helper()
	if len(sharded) != n || len(single) != n {
		t.Fatalf("got %d sharded / %d single results, want %d", len(sharded), len(single), n)
	}
	for i := 0; i < n; i++ {
		sh, si := sharded[i], single[i]
		if sh.Error != nil || si.Error != nil {
			t.Fatalf("entity %d errored: sharded=%+v single=%+v", i, sh.Error, si.Error)
		}
		if sh.ID != si.ID || sh.Valid != si.Valid || sh.Rounds != si.Rounds {
			t.Fatalf("entity %d envelope mismatch: sharded=%+v single=%+v", i, sh, si)
		}
		if !reflect.DeepEqual(sh.Resolved, si.Resolved) {
			t.Fatalf("entity %d resolved mismatch:\n sharded %v\n single  %v", i, sh.Resolved, si.Resolved)
		}
		if !reflect.DeepEqual(sh.Tuple, si.Tuple) {
			t.Fatalf("entity %d tuple mismatch:\n sharded %v\n single  %v", i, sh.Tuple, si.Tuple)
		}
	}
}

func TestShardResolveParity(t *testing.T) {
	urls := []string{newBackendURL(t), newBackendURL(t)}
	c, curl := newShard(t, urls, nil)
	single := newBackendURL(t)

	for i := 0; i < 6; i++ {
		body := edithResolveBody(t, i)
		resp, got := postJSON(t, curl+"/v1/resolve", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("entity %d: coordinator status %d: %s", i, resp.StatusCode, got)
		}
		resp, want := postJSON(t, single+"/v1/resolve", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("entity %d: single-node status %d: %s", i, resp.StatusCode, want)
		}
		var gm, wm map[string]json.RawMessage
		if err := json.Unmarshal(got, &gm); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(want, &wm); err != nil {
			t.Fatal(err)
		}
		for _, field := range []string{"valid", "resolved", "tuple", "rounds"} {
			if !bytes.Equal(gm[field], wm[field]) {
				t.Fatalf("entity %d field %s: coordinator %s, single node %s", i, field, gm[field], wm[field])
			}
		}
	}
	var spread int
	for _, b := range c.backends {
		if b.requests.Load() > 0 {
			spread++
		}
	}
	if spread != 2 {
		t.Fatalf("resolve traffic reached %d of 2 backends", spread)
	}
}

func TestShardValidate(t *testing.T) {
	_, curl := newShard(t, []string{newBackendURL(t), newBackendURL(t)}, nil)
	resp, data := postJSON(t, curl+"/v1/validate", edithResolveBody(t, 0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out struct {
		Valid *bool `json:"valid"`
	}
	if err := json.Unmarshal(data, &out); err != nil || out.Valid == nil {
		t.Fatalf("bad validate body %s (err %v)", data, err)
	}
	if !*out.Valid {
		t.Fatalf("edith entity should be valid: %s", data)
	}
}

func TestShardBatchParity(t *testing.T) {
	const n = 24
	c, curl := newShard(t, []string{newBackendURL(t), newBackendURL(t)}, func(cfg *Config) {
		cfg.ChunkEntities = 8
		cfg.Pipeline = 2
	})
	single := newBackendURL(t)

	body := edithBatchBody(t, n)
	resp, lines := postNDJSON(t, curl+"/v1/resolve/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("coordinator status %d", resp.StatusCode)
	}
	sharded := collectBatch(t, lines)
	resp, lines = postNDJSON(t, single+"/v1/resolve/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single-node status %d", resp.StatusCode)
	}
	requireSameResults(t, n, sharded, collectBatch(t, lines))

	for i, b := range c.backends {
		if b.requests.Load() == 0 {
			t.Fatalf("backend %d received no sub-batches", i)
		}
		if b.errors.Load() != 0 || b.retries.Load() != 0 {
			t.Fatalf("healthy run recorded errors/retries on backend %d", i)
		}
	}
}

func TestShardBatchBadRulesRejectedLocally(t *testing.T) {
	c, curl := newShard(t, []string{newBackendURL(t)}, nil)
	body := []byte(`{"schema":["a"],"currency":["not a rule"]}` + "\n" + `{"id":"x","tuples":[["v"]]}` + "\n")
	resp, data := postJSON(t, curl+"/v1/resolve/batch", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), codeBadRules) {
		t.Fatalf("want %s envelope, got %s", codeBadRules, data)
	}
	if got := c.backends[0].requests.Load(); got != 0 {
		t.Fatalf("bad header leaked %d requests to the backend", got)
	}
}

func TestShardBatchFailover(t *testing.T) {
	const n = 24
	dying := dyingBackend(t)
	healthy := newBackendURL(t)
	c, curl := newShard(t, []string{dying, healthy}, func(cfg *Config) {
		cfg.ChunkEntities = 6
	})
	single := newBackendURL(t)

	body := edithBatchBody(t, n)
	resp, lines := postNDJSON(t, curl+"/v1/resolve/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("coordinator status %d", resp.StatusCode)
	}
	sharded := collectBatch(t, lines)
	resp, lines = postNDJSON(t, single+"/v1/resolve/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single-node status %d", resp.StatusCode)
	}
	// Every entity — including those first routed at the dying backend —
	// completes correctly via retry on the sibling.
	requireSameResults(t, n, sharded, collectBatch(t, lines))

	dyingB, healthyB := c.backends[0], c.backends[1]
	if dyingB.errors.Load() == 0 {
		t.Fatal("dying backend recorded no transport errors")
	}
	if dyingB.up.Load() {
		t.Fatal("dying backend should be marked down")
	}
	if healthyB.retries.Load() == 0 {
		t.Fatal("healthy backend recorded no retried work")
	}

	// One backend down, one up: the coordinator stays ready and /metrics
	// exposes the asymmetry.
	hresp, err := http.Get(curl + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("readyz with one live backend answered %d", hresp.StatusCode)
	}
	mresp, err := http.Get(curl + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mdata, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		fmt.Sprintf("crshard_backend_up{backend=%q} 0", dying),
		fmt.Sprintf("crshard_backend_up{backend=%q} 1", healthy),
		fmt.Sprintf("crshard_backend_retries_total{backend=%q} %d", healthy, healthyB.retries.Load()),
		`crshard_requests_total{endpoint="batch"} 1`,
	} {
		if !strings.Contains(string(mdata), want) {
			t.Fatalf("metrics missing %q:\n%s", want, mdata)
		}
	}
}

// collectDataset splits dataset response lines into per-key result lines and
// the summary, failing on duplicate keys.
func collectDataset(t *testing.T, lines []string) (map[string]string, datasetSummaryJSON) {
	t.Helper()
	results := make(map[string]string, len(lines))
	var sum datasetSummaryJSON
	sawSummary := false
	for _, l := range lines {
		var dl dsLine
		if err := json.Unmarshal([]byte(l), &dl); err != nil {
			t.Fatalf("bad dataset line %q: %v", l, err)
		}
		if dl.Summary != nil {
			if sawSummary {
				t.Fatalf("two summary lines")
			}
			sawSummary = true
			if err := json.Unmarshal(dl.Summary, &sum); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if _, dup := results[dl.ID]; dup {
			t.Fatalf("duplicate result for key %q", dl.ID)
		}
		results[dl.ID] = l
	}
	if !sawSummary {
		t.Fatal("no summary line")
	}
	return results, sum
}

func TestShardDatasetParity(t *testing.T) {
	const n = 12
	c, curl := newShard(t, []string{newBackendURL(t), newBackendURL(t)}, nil)
	single := newBackendURL(t)

	body := edithDatasetBody(t, n)
	resp, lines := postNDJSON(t, curl+"/v1/resolve/dataset", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("coordinator status %d", resp.StatusCode)
	}
	sharded, shardedSum := collectDataset(t, lines)
	resp, lines = postNDJSON(t, single+"/v1/resolve/dataset", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single-node status %d", resp.StatusCode)
	}
	base, baseSum := collectDataset(t, lines)

	if len(sharded) != n || len(base) != n {
		t.Fatalf("got %d sharded / %d single results, want %d", len(sharded), len(base), n)
	}
	// Result lines are relayed verbatim, so after keying by entity the
	// merged output must be byte-identical to the single-node run.
	for key, want := range base {
		if got, ok := sharded[key]; !ok {
			t.Fatalf("key %q missing from sharded output", key)
		} else if got != want {
			t.Fatalf("key %q differs:\n sharded %s\n single  %s", key, got, want)
		}
	}
	if shardedSum.Rows != baseSum.Rows || shardedSum.Entities != baseSum.Entities ||
		shardedSum.Resolved != baseSum.Resolved || shardedSum.Invalid != baseSum.Invalid ||
		shardedSum.Failed != baseSum.Failed {
		t.Fatalf("summary mismatch: sharded %+v, single %+v", shardedSum, baseSum)
	}
	if shardedSum.Dropped != 0 {
		t.Fatalf("healthy fleet dropped %d rows", shardedSum.Dropped)
	}
	var spread int
	for _, b := range c.backends {
		if b.requests.Load() > 0 {
			spread++
		}
	}
	if spread != 2 {
		t.Fatalf("dataset partitions reached %d of 2 backends", spread)
	}
}

func TestShardDatasetFailover(t *testing.T) {
	const n = 12
	dying := dyingBackend(t)
	c, curl := newShard(t, []string{dying, newBackendURL(t)}, nil)
	single := newBackendURL(t)

	body := edithDatasetBody(t, n)
	resp, lines := postNDJSON(t, curl+"/v1/resolve/dataset", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("coordinator status %d", resp.StatusCode)
	}
	sharded, sum := collectDataset(t, lines)
	resp, lines = postNDJSON(t, single+"/v1/resolve/dataset", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single-node status %d", resp.StatusCode)
	}
	base, _ := collectDataset(t, lines)

	// The dying backend's partition moves wholesale to the sibling: every
	// entity still appears exactly once, matching the single-node bytes.
	if len(sharded) != n {
		t.Fatalf("got %d results, want %d", len(sharded), n)
	}
	for key, want := range base {
		if sharded[key] != want {
			t.Fatalf("key %q differs after failover:\n sharded %s\n single  %s", key, sharded[key], want)
		}
	}
	if sum.Entities != n || sum.Dropped != 0 {
		t.Fatalf("summary does not reconcile after failover: %+v", sum)
	}
	if c.backends[0].errors.Load() == 0 || c.backends[0].up.Load() {
		t.Fatal("dying backend was not marked down")
	}
	if c.backends[1].retries.Load() == 0 {
		t.Fatal("sibling recorded no retried partition")
	}
}

func TestShardSessionAffinity(t *testing.T) {
	c, curl := newShard(t, []string{newBackendURL(t), newBackendURL(t)}, nil)

	resp, data := postJSON(t, curl+"/v1/session", edithResolveBody(t, 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create status %d: %s", resp.StatusCode, data)
	}
	var state map[string]any
	if err := json.Unmarshal(data, &state); err != nil {
		t.Fatal(err)
	}
	sid, _ := state["session"].(string)
	tag, inner, ok := strings.Cut(sid, ".")
	if !ok || inner == "" {
		t.Fatalf("session id %q is not fleet-tagged", sid)
	}
	owner := c.byTag[tag]
	if owner == nil {
		t.Fatalf("session tag %q names no backend", tag)
	}
	if want := c.backends[c.ring.Owner("e1")]; owner != want {
		t.Fatalf("session pinned to %s, ring owner is %s", owner.url, want.url)
	}

	// GET proxies to the pinned backend and keeps the fleet id.
	gresp, err := http.Get(curl + "/v1/session/" + sid)
	if err != nil {
		t.Fatal(err)
	}
	gdata, _ := io.ReadAll(gresp.Body)
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusOK {
		t.Fatalf("get status %d: %s", gresp.StatusCode, gdata)
	}
	var got map[string]any
	if err := json.Unmarshal(gdata, &got); err != nil {
		t.Fatal(err)
	}
	if got["session"] != sid {
		t.Fatalf("get returned session %v, want %q", got["session"], sid)
	}

	// DELETE through the proxy, then the id is dead fleet-wide: GET and the
	// /answer route both relay the backend's 404.
	req, _ := http.NewRequest(http.MethodDelete, curl+"/v1/session/"+sid, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", dresp.StatusCode)
	}
	gresp, err = http.Get(curl + "/v1/session/" + sid)
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete answered %d", gresp.StatusCode)
	}
	aresp, adata := postJSON(t, curl+"/v1/session/"+sid+"/answer", []byte(`{"answers":{"status":"deceased"}}`))
	if aresp.StatusCode != http.StatusNotFound {
		t.Fatalf("answer after delete answered %d: %s", aresp.StatusCode, adata)
	}

	// An id whose tag names no fleet backend never leaves the coordinator.
	gresp, err = http.Get(curl + "/v1/session/ffffffff.whatever")
	if err != nil {
		t.Fatal(err)
	}
	gdata, _ = io.ReadAll(gresp.Body)
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusNotFound || !strings.Contains(string(gdata), codeBadSessionID) {
		t.Fatalf("unknown tag answered %d: %s", gresp.StatusCode, gdata)
	}
}

func TestShardReadyzTracksFleet(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close() // connection refused from now on

	_, curl := newShard(t, []string{deadURL}, nil)

	// Backends start optimistically up; the first request discovers the
	// truth, exhausts the (one-node) fleet, and answers no_backend.
	resp, data := postJSON(t, curl+"/v1/resolve", edithResolveBody(t, 0))
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(data), codeNoBackend) {
		t.Fatalf("resolve against dead fleet answered %d: %s", resp.StatusCode, data)
	}

	rresp, err := http.Get(curl + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rdata, _ := io.ReadAll(rresp.Body)
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(rdata), `"ready":false`) {
		t.Fatalf("readyz with dead fleet answered %d: %s", rresp.StatusCode, rdata)
	}
	hresp, err := http.Get(curl + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("coordinator liveness answered %d", hresp.StatusCode)
	}
}

func TestShardHealthCheckerRevivesBackend(t *testing.T) {
	c, curl := newShard(t, []string{newBackendURL(t)}, func(cfg *Config) {
		cfg.HealthInterval = 20 * time.Millisecond
	})
	c.markDown(c.backends[0])

	deadline := time.Now().Add(5 * time.Second)
	for !c.backends[0].up.Load() {
		if time.Now().After(deadline) {
			t.Fatal("health checker never revived a healthy backend")
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, data := postJSON(t, curl+"/v1/resolve", edithResolveBody(t, 0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resolve after revival answered %d: %s", resp.StatusCode, data)
	}
}
