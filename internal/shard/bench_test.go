package shard

import (
	"bufio"
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"conflictres/internal/server"
)

// newUncachedBackendURL starts a crserve backend with the result cache off,
// so every benchmark iteration pays real resolution instead of a cache hit.
func newUncachedBackendURL(b *testing.B) string {
	b.Helper()
	s := server.New(server.Config{CacheSize: -1})
	b.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(ts.Close)
	return ts.URL
}

// BenchmarkShardedBatch measures batch resolution throughput through the
// crshard coordinator over two local crserve backends, against the same
// stream on one directly-addressed backend. The fleet pays an extra HTTP
// hop, chunking, and merge per entity; the benchmark tracks how much of the
// fan-out win that overhead eats at this (small, in-process) scale.
func BenchmarkShardedBatch(b *testing.B) {
	const entities = 64
	body := edithBatchBody(b, entities)

	run := func(b *testing.B, url string) {
		b.ReportAllocs()
		b.SetBytes(int64(len(body)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := http.Post(url+"/v1/resolve/batch", "application/x-ndjson", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			got := 0
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 64<<10), 1<<20)
			for sc.Scan() {
				if len(sc.Bytes()) > 0 {
					got++
				}
			}
			resp.Body.Close()
			if err := sc.Err(); err != nil {
				b.Fatal(err)
			}
			if got != entities {
				b.Fatalf("%d results, want %d", got, entities)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(entities)*float64(b.N)/b.Elapsed().Seconds(), "entities/s")
	}

	b.Run("single", func(b *testing.B) {
		run(b, newUncachedBackendURL(b))
	})
	b.Run("fleet=2", func(b *testing.B) {
		_, curl := newShard(b, []string{newUncachedBackendURL(b), newUncachedBackendURL(b)}, func(cfg *Config) {
			cfg.ChunkEntities = 16
		})
		run(b, curl)
	})
}
