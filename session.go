package conflictres

import (
	"fmt"
	"sync"

	"conflictres/internal/core"
	"conflictres/internal/encode"
	"conflictres/internal/relation"
)

// Session drives the interactive resolution framework (Fig. 4) step by
// step while holding one incremental encoding and one SAT solver for the
// entity's whole lifetime: validity, deduction and suggestion all reuse the
// same learned-clause state, and each Apply folds the user's answers in as
// Se ⊕ Ot — incremental unit-clause additions instead of a re-encode.
//
// Resolve remains the one-call loop; Session is for callers that mediate a
// real user conversation (ask, wait, apply, repeat) and for long-lived
// integrations that interleave deduction with other work.
//
// A Session is safe for concurrent use: every method holds an internal
// mutex, so calls from multiple goroutines serialize against each other and
// each call observes a consistent view. Multi-call sequences (for example
// Suggest followed by Apply) are NOT atomic as a unit — a server handing
// one session to several clients must add its own per-session lock around
// such sequences (internal/server's session store does exactly that).
type Session struct {
	// mu guards every field below. The underlying core.Session is not
	// concurrency-safe, so all access to it goes through this lock.
	mu           sync.Mutex
	sess         *core.Session
	sch          *Schema
	interactions int
	// prior accumulates the counters of core sessions replaced by Apply's
	// rollback path, so Stats reports the whole conversation's work.
	prior SessionStats
	// view caches validity, the derived order and the resolved values for
	// the current formula; Apply invalidates it. One round of the usual
	// loop (Complete → Suggest → Apply → Result) then deduces once, not
	// three times.
	view *sessionView
	// mode is the sticky resolution mode the session was created with; its
	// trust overlay is already merged into the core session's specification,
	// and Result applies its strategy.
	mode ResolutionMode
}

type sessionView struct {
	valid    bool
	od       *core.OrderSet
	resolved map[Attr]Value
}

// current returns the cached per-formula view, computing it on first use.
// Callers must hold s.mu.
func (s *Session) current() *sessionView {
	if s.view != nil {
		return s.view
	}
	v := &sessionView{}
	if ok, _ := s.sess.IsValid(); ok {
		v.valid = true
		v.od, _ = s.sess.DeduceOrder()
		v.resolved = core.TrueValues(s.sess.Encoding(), v.od)
	}
	s.view = v
	return v
}

// NewSession starts an incremental resolution session on the specification.
func NewSession(spec *Spec) (*Session, error) {
	return NewSessionMode(spec, ResolutionMode{})
}

// NewSessionMode is NewSession with an explicit resolution mode. The mode is
// sticky: it is fixed at creation, its trust overlay merges into the
// specification for every deduction and suggestion, and Result applies its
// strategy — mirroring how the HTTP session endpoints pin a mode per session.
func NewSessionMode(spec *Spec, mode ResolutionMode) (*Session, error) {
	if spec == nil {
		return nil, fmt.Errorf("conflictres: NewSession needs a specification")
	}
	if err := spec.m.Validate(); err != nil {
		return nil, err
	}
	m, err := mode.effectiveSpec(spec.m)
	if err != nil {
		return nil, err
	}
	return &Session{
		sess: core.NewSession(m, encode.Options{}),
		sch:  spec.Schema(),
		mode: mode,
	}, nil
}

// Valid reports whether the current specification (including all applied
// answers) has a valid completion. The verdict is cached until Apply.
// Validity gates every derived view: deduction on a spec that is UNSAT
// only under search would otherwise yield values read off an
// unsatisfiable formula.
func (s *Session) Valid() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.current().valid
}

// Deduce returns the true values determined so far, keyed by attribute
// name. It returns nil when the current specification is invalid.
func (s *Session) Deduce() map[string]Value {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.current()
	if !v.valid {
		return nil
	}
	out := make(map[string]Value, len(v.resolved))
	for a, val := range v.resolved {
		out[s.sch.Name(a)] = val
	}
	return out
}

// Complete reports whether every attribute has a determined true value.
func (s *Session) Complete() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.current()
	return v.valid && len(v.resolved) == s.sch.Len()
}

// Suggest computes the attribute set the user should confirm next, with
// candidate values. It fails when the current specification is invalid.
func (s *Session) Suggest() (Suggestion, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.current()
	if !v.valid {
		return Suggestion{}, fmt.Errorf("conflictres: specification is invalid")
	}
	return s.sess.Suggest(v.od, v.resolved), nil
}

// Apply folds user-validated true values, keyed by attribute name, into the
// session (Se ⊕ Ot). Values outside the data's active domain are allowed.
// If the input contradicts the specification, the session rolls back to its
// last consistent state (the framework's "revise" branch) and an error is
// returned.
func (s *Session) Apply(answers map[string]Value) error {
	if len(answers) == 0 {
		return nil
	}
	conv := make(map[Attr]Value, len(answers))
	for name, v := range answers {
		a, ok := s.sch.Attr(name)
		if !ok {
			return fmt.Errorf("conflictres: unknown attribute %q", name)
		}
		conv[a] = v
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	prev := s.sess.Spec() // Extend clones; prev stays the consistent state
	s.sess.Extend(conv)
	s.view = nil // formula changed: every derived view is stale
	if ok, _ := s.sess.IsValid(); !ok {
		// Roll back to the last consistent state, carrying the discarded
		// session's reuse counters into the running totals.
		s.prior = addStats(s.prior, s.sess.Stats())
		s.sess = core.NewSession(prev, encode.Options{})
		return fmt.Errorf("conflictres: input contradicts the specification; rolled back")
	}
	s.interactions++
	return nil
}

func addStats(a, b SessionStats) SessionStats {
	a.Rebuilds += b.Rebuilds
	a.Extends += b.Extends
	a.Solves += b.Solves
	a.ClausesLoaded += b.ClausesLoaded
	return a
}

// Interactions returns the number of successful Apply calls.
func (s *Session) Interactions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.interactions
}

// Stats returns the session's solver-reuse counters, including the work of
// any sessions discarded by Apply's rollback.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return addStats(s.prior, s.sess.Stats())
}

// Result snapshots the session as a Result, mirroring Resolve's output for
// the rounds driven so far: one initial automatic round plus one per
// successful Apply. Timing stays zero — the step-wise API leaves phase
// timing to the caller's own clock.
func (s *Session) Result() *Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.current()
	res := &Result{
		Valid:        v.valid,
		Resolved:     make(map[Attr]Value, len(v.resolved)),
		Rounds:       s.interactions + 1,
		Interactions: s.interactions,
		Session:      addStats(s.prior, s.sess.Stats()),
		schema:       s.sch,
	}
	if !v.valid {
		return res
	}
	if fr, ok := fastResolve(s.sess.Spec(), s.mode.Strategy); ok {
		fr.Rounds = res.Rounds
		fr.Interactions = res.Interactions
		fr.Session = res.Session
		return fr
	}
	for a, val := range v.resolved {
		res.Resolved[a] = val
	}
	res.Tuple = relation.NewTuple(s.sch)
	for a, val := range res.Resolved {
		res.Tuple[a] = val
	}
	trustFillTuple(s.sess, v.od, res)
	return res
}
