// Command crshard coordinates a fleet of crserve backends behind the
// single-server wire API: entities are consistent-hashed across the fleet,
// batch and dataset NDJSON streams are partitioned, fanned out, and merged,
// and interactive sessions are pinned to their owning backend through
// tagged session ids.
//
// Usage:
//
//	crshard -backends http://host1:8372,http://host2:8372
//	        [-addr :8371] [-vnodes 64] [-pipeline 4] [-chunk 32]
//	        [-timeout 2m] [-health-interval 2s] [-max-body 8388608]
//	        [-retry-base 25ms] [-retry-cap 1s] [-retry-budget 15s]
//
// Endpoints (same contracts as crserve):
//
//	POST /v1/resolve         forwarded to the entity's owner, with failover
//	POST /v1/resolve/batch   split into per-backend sub-batches, pipelined,
//	                         merged; a dead backend's unanswered entities
//	                         retry on the next owner along the ring
//	POST /v1/resolve/dataset rows partitioned by entity key so each entity
//	                         groups and resolves on one backend; result
//	                         lines relayed verbatim, summaries merged
//	POST /v1/validate        forwarded to the entity's owner, with failover
//	POST /v1/session             routed by entity key; the returned id pins
//	                             the session to its backend
//	GET/POST/DELETE /v1/session/{id}...  proxied to the pinned backend
//	GET  /healthz            coordinator liveness
//	GET  /readyz             ready while at least one backend is up
//	GET  /metrics            per-backend request/error/retry counters, ring
//	                         occupancy, merge latency
//
// Every failover path — keyed forwards, the entity proxy, batch reroutes,
// replication forwards — retries under one policy: capped exponential
// backoff from -retry-base to -retry-cap with ±50% jitter, all charged
// against the -retry-budget deadline, after which the request is shed with
// 503 retry_budget_exhausted.
//
// The CRFAULT_* environment variables (CRFAULT_SEED, CRFAULT_TRANSPORT,
// CRFAULT_LATENCY, CRFAULT_TRUNCATE, ...) arm deterministic fault injection
// on the coordinator's backend transport; they exist for chaos testing and
// stay inert when unset.
//
// See docs/OPERATIONS.md ("Fleet deployment") for topology and failover
// semantics. The coordinator shuts down gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"conflictres/internal/fault"
	"conflictres/internal/shard"
	"conflictres/internal/version"
)

func main() {
	var cfg shard.Config
	showVersion := flag.Bool("version", false, "print version and exit")
	backends := flag.String("backends", "", "comma-separated crserve base URLs (required)")
	flag.StringVar(&cfg.Addr, "addr", ":8371", "listen address")
	flag.IntVar(&cfg.VNodes, "vnodes", 0, "virtual nodes per backend on the hash ring (0 = default 64)")
	flag.IntVar(&cfg.Pipeline, "pipeline", 0, "max in-flight sub-batches per backend (0 = default 4)")
	flag.IntVar(&cfg.ChunkEntities, "chunk", 0, "entities per batch sub-request (0 = default 32)")
	flag.DurationVar(&cfg.Timeout, "timeout", 0, "per backend-request deadline (0 = default 2m)")
	flag.DurationVar(&cfg.HealthInterval, "health-interval", 0, "backend probe cadence (0 = default 2s)")
	flag.Int64Var(&cfg.MaxBodyBytes, "max-body", 0, "max request body / NDJSON line bytes (0 = default 8 MiB)")
	flag.DurationVar(&cfg.RetryBase, "retry-base", 0, "first failover backoff delay (0 = default 25ms)")
	flag.DurationVar(&cfg.RetryCap, "retry-cap", 0, "max single failover backoff delay (0 = default 1s)")
	flag.DurationVar(&cfg.RetryBudget, "retry-budget", 0, "total failover time per request before shedding it (0 = default 15s)")
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("crshard"))
		return
	}
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "crshard: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			cfg.Backends = append(cfg.Backends, u)
		}
	}
	if len(cfg.Backends) == 0 {
		fmt.Fprintln(os.Stderr, "crshard: -backends is required (comma-separated crserve URLs)")
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if inj := fault.FromEnv(); inj != nil {
		log.Printf("crshard: fault injection armed from CRFAULT_* environment")
		cfg.Client = &http.Client{Transport: inj.RoundTripper(http.DefaultTransport)}
	}

	coord, err := shard.New(cfg)
	if err != nil {
		log.Fatalf("crshard: %v", err)
	}
	log.Printf("crshard: listening on %s, %d backends", cfg.Addr, len(cfg.Backends))
	start := time.Now()
	if err := coord.ListenAndServe(ctx); err != nil {
		log.Fatalf("crshard: %v", err)
	}
	log.Printf("crshard: shut down cleanly after %s", time.Since(start).Round(time.Second))
}
