// Command crserve serves conflict resolution over HTTP.
//
// Usage:
//
//	crserve [-addr :8372] [-workers N] [-cache-size N] [-rule-cache-size N]
//	        [-timeout 30s] [-max-body 8388608]
//	        [-session-cap N] [-session-ttl 15m] [-session-sweep 1m]
//	        [-session-snapshot sessions.ndjson]
//	        [-live-cap N] [-live-ttl 15m] [-live-snapshot entities.ndjson]
//	        [-pprof-addr 127.0.0.1:6060]
//
// Endpoints:
//
//	POST /v1/resolve         one entity, JSON in / JSON out
//	POST /v1/resolve/batch   NDJSON streaming: header line with the shared
//	                         rule set, then one entity per line; one result
//	                         per line back
//	POST /v1/resolve/dataset NDJSON streaming: header line with rules + key
//	                         columns, then one raw row per line; rows are
//	                         grouped into entities by key — one result per
//	                         entity plus a summary line back
//	POST /v1/validate        validity check (optionally with an explanation)
//	POST /v1/session             start a stateful interactive session; the
//	                             server keeps the entity's incremental
//	                             solver alive between rounds
//	GET  /v1/session/{id}        current session state
//	POST /v1/session/{id}/answer fold user answers in (Se ⊕ Ot) and return
//	                             the next suggestion
//	DELETE /v1/session/{id}      drop the session
//	POST /v1/entity/{key}/rows   change-data-capture feed: fold new rows
//	                             into the entity's persistent resolution
//	                             state and return the re-resolved outcome
//	GET  /v1/entity/{key}        the entity's current resolution state
//	DELETE /v1/entity/{key}      drop the entity
//	GET  /healthz            liveness probe (green even while draining)
//	GET  /readyz             readiness probe (503 once shutdown starts)
//	GET  /metrics            Prometheus-style counters
//
// With -session-snapshot the server restores interactive sessions from the
// named NDJSON file at startup (missing file = fresh start) and writes the
// live sessions back to it on graceful shutdown — the rolling-restart path
// for a fleet backend: clients keep their session ids across the restart.
//
// With -live-snapshot the server does the same for live entities (the
// /v1/entity change-data-capture feed): each entity's row-log — every
// acknowledged upsert, in order — is written out on graceful shutdown and
// replayed at startup, so accumulated resolution state survives restarts.
//
// The CRFAULT_* environment variables (CRFAULT_SEED, CRFAULT_WRITE_FAIL,
// ...) arm deterministic fault injection on the live upsert path and the
// snapshot writer; they exist for chaos testing and stay inert when unset.
//
// With -pprof-addr a net/http/pprof mux is served on a second, separate
// listener (opt-in, keep it on loopback or an internal interface — the
// profiling endpoints are not meant for untrusted clients):
//
//	crserve -pprof-addr 127.0.0.1:6060 &
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=10
//
// See docs/OPERATIONS.md for the full wire formats with curl examples.
//
// The server shuts down gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"conflictres/internal/fault"
	"conflictres/internal/server"
	"conflictres/internal/version"
)

func main() {
	var cfg server.Config
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.StringVar(&cfg.Addr, "addr", ":8372", "listen address")
	flag.IntVar(&cfg.Workers, "workers", 0, "batch worker pool width (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.CacheSize, "cache-size", 0, "result cache entries (0 = default 4096, negative disables)")
	flag.IntVar(&cfg.RuleCacheSize, "rule-cache-size", 0, "compiled rule-set cache entries (0 = default 128)")
	flag.DurationVar(&cfg.Timeout, "timeout", 0, "per-entity solver deadline (0 = default 30s, negative disables)")
	flag.Int64Var(&cfg.MaxBodyBytes, "max-body", 0, "max request body / batch line bytes (0 = default 8 MiB)")
	flag.IntVar(&cfg.SessionCap, "session-cap", 0, "max live interactive sessions before LRU eviction (0 = default 1024)")
	flag.DurationVar(&cfg.SessionTTL, "session-ttl", 0, "idle session expiry (0 = default 15m, negative disables)")
	flag.DurationVar(&cfg.SessionSweep, "session-sweep", 0, "session janitor sweep interval (0 = default 1m)")
	flag.IntVar(&cfg.LiveCap, "live-cap", 0, "max live entities before LRU eviction (0 = default 512)")
	flag.DurationVar(&cfg.LiveTTL, "live-ttl", 0, "idle live-entity expiry (0 = default 15m, negative disables)")
	snapshotPath := flag.String("session-snapshot", "", "restore sessions from this NDJSON file at startup and snapshot back on shutdown (empty = disabled)")
	liveSnapshotPath := flag.String("live-snapshot", "", "restore live entities from this NDJSON file at startup and snapshot back on shutdown (empty = disabled)")
	pprofAddr := flag.String("pprof-addr", "", "serve /debug/pprof on this extra address (empty = disabled; keep it internal)")
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("crserve"))
		return
	}
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "crserve: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *pprofAddr != "" {
		// A dedicated mux so the profiling endpoints never leak onto the
		// public listener; DefaultServeMux stays untouched.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("crserve: pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pm); err != nil {
				log.Printf("crserve: pprof server: %v", err)
			}
		}()
	}

	inj := fault.FromEnv()
	if inj != nil {
		log.Printf("crserve: fault injection armed from CRFAULT_* environment")
		cfg.LiveFault = inj.LiveUpsert
	}
	if *liveSnapshotPath != "" {
		// Live entities must snapshot before Close tears the registry down,
		// so this runs on the server's drain seam rather than after
		// ListenAndServe returns like the session snapshot below.
		cfg.OnDrain = func(s *server.Server) { snapshotLiveEntities(s, *liveSnapshotPath, inj) }
	}

	srv := server.New(cfg)
	if *snapshotPath != "" {
		restoreSessions(srv, *snapshotPath)
	}
	if *liveSnapshotPath != "" {
		restoreLiveEntities(srv, *liveSnapshotPath)
	}
	log.Printf("crserve: listening on %s", cfg.Addr)
	start := time.Now()
	if err := srv.ListenAndServe(ctx); err != nil {
		log.Fatalf("crserve: %v", err)
	}
	if *snapshotPath != "" {
		snapshotSessions(srv, *snapshotPath)
	}
	log.Printf("crserve: shut down cleanly after %s", time.Since(start).Round(time.Second))
}

// restoreSessions rebuilds interactive sessions from a snapshot file. A
// missing file is a fresh start; a partly bad file restores what it can.
func restoreSessions(srv *server.Server, path string) {
	f, err := os.Open(path)
	if err != nil {
		if !os.IsNotExist(err) {
			log.Printf("crserve: session snapshot: %v", err)
		}
		return
	}
	defer f.Close()
	n, err := srv.RestoreSessions(f)
	if err != nil {
		log.Printf("crserve: session restore: %v", err)
	}
	log.Printf("crserve: restored %d sessions from %s", n, path)
}

// snapshotSessions writes the live sessions out after graceful shutdown,
// atomically via a temp file so a crash mid-write cannot corrupt the last
// good snapshot.
func snapshotSessions(srv *server.Server, path string) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		log.Printf("crserve: session snapshot: %v", err)
		return
	}
	err = srv.SnapshotSessions(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		log.Printf("crserve: session snapshot: %v", err)
		return
	}
	log.Printf("crserve: snapshotted sessions to %s", path)
}

// restoreLiveEntities replays live entities from a snapshot file. A missing
// file is a fresh start; a partly bad file restores what it can.
func restoreLiveEntities(srv *server.Server, path string) {
	f, err := os.Open(path)
	if err != nil {
		if !os.IsNotExist(err) {
			log.Printf("crserve: live snapshot: %v", err)
		}
		return
	}
	defer f.Close()
	n, err := srv.RestoreLiveEntities(f)
	if err != nil {
		log.Printf("crserve: live restore: %v", err)
	}
	log.Printf("crserve: restored %d live entities from %s", n, path)
}

// snapshotLiveEntities writes the live entities' row-logs out on the drain
// seam (before the registry closes), atomically via a temp file so a crash
// or injected partial write mid-snapshot cannot corrupt the last good
// snapshot — the rename only happens after a complete write.
func snapshotLiveEntities(srv *server.Server, path string, inj *fault.Injector) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		log.Printf("crserve: live snapshot: %v", err)
		return
	}
	err = srv.SnapshotLiveEntities(inj.Writer(f))
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		log.Printf("crserve: live snapshot: %v", err)
		return
	}
	log.Printf("crserve: snapshotted live entities to %s", path)
}
