// Command crserve serves conflict resolution over HTTP.
//
// Usage:
//
//	crserve [-addr :8372] [-workers N] [-cache-size N] [-rule-cache-size N]
//	        [-timeout 30s] [-max-body 8388608]
//	        [-session-cap N] [-session-ttl 15m] [-session-sweep 1m]
//	        [-pprof-addr 127.0.0.1:6060]
//
// Endpoints:
//
//	POST /v1/resolve         one entity, JSON in / JSON out
//	POST /v1/resolve/batch   NDJSON streaming: header line with the shared
//	                         rule set, then one entity per line; one result
//	                         per line back
//	POST /v1/resolve/dataset NDJSON streaming: header line with rules + key
//	                         columns, then one raw row per line; rows are
//	                         grouped into entities by key — one result per
//	                         entity plus a summary line back
//	POST /v1/validate        validity check (optionally with an explanation)
//	POST /v1/session             start a stateful interactive session; the
//	                             server keeps the entity's incremental
//	                             solver alive between rounds
//	GET  /v1/session/{id}        current session state
//	POST /v1/session/{id}/answer fold user answers in (Se ⊕ Ot) and return
//	                             the next suggestion
//	DELETE /v1/session/{id}      drop the session
//	GET  /healthz            liveness probe
//	GET  /metrics            Prometheus-style counters
//
// With -pprof-addr a net/http/pprof mux is served on a second, separate
// listener (opt-in, keep it on loopback or an internal interface — the
// profiling endpoints are not meant for untrusted clients):
//
//	crserve -pprof-addr 127.0.0.1:6060 &
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=10
//
// See docs/OPERATIONS.md for the full wire formats with curl examples.
//
// The server shuts down gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"conflictres/internal/server"
	"conflictres/internal/version"
)

func main() {
	var cfg server.Config
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.StringVar(&cfg.Addr, "addr", ":8372", "listen address")
	flag.IntVar(&cfg.Workers, "workers", 0, "batch worker pool width (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.CacheSize, "cache-size", 0, "result cache entries (0 = default 4096, negative disables)")
	flag.IntVar(&cfg.RuleCacheSize, "rule-cache-size", 0, "compiled rule-set cache entries (0 = default 128)")
	flag.DurationVar(&cfg.Timeout, "timeout", 0, "per-entity solver deadline (0 = default 30s, negative disables)")
	flag.Int64Var(&cfg.MaxBodyBytes, "max-body", 0, "max request body / batch line bytes (0 = default 8 MiB)")
	flag.IntVar(&cfg.SessionCap, "session-cap", 0, "max live interactive sessions before LRU eviction (0 = default 1024)")
	flag.DurationVar(&cfg.SessionTTL, "session-ttl", 0, "idle session expiry (0 = default 15m, negative disables)")
	flag.DurationVar(&cfg.SessionSweep, "session-sweep", 0, "session janitor sweep interval (0 = default 1m)")
	pprofAddr := flag.String("pprof-addr", "", "serve /debug/pprof on this extra address (empty = disabled; keep it internal)")
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("crserve"))
		return
	}
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "crserve: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *pprofAddr != "" {
		// A dedicated mux so the profiling endpoints never leak onto the
		// public listener; DefaultServeMux stays untouched.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("crserve: pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pm); err != nil {
				log.Printf("crserve: pprof server: %v", err)
			}
		}()
	}

	srv := server.New(cfg)
	log.Printf("crserve: listening on %s", cfg.Addr)
	start := time.Now()
	if err := srv.ListenAndServe(ctx); err != nil {
		log.Fatalf("crserve: %v", err)
	}
	log.Printf("crserve: shut down cleanly after %s", time.Since(start).Round(time.Second))
}
