// Command crctl resolves conflicts in entity specifications from the
// command line.
//
// Usage:
//
//	crctl validate spec.txt          check whether the specification is valid
//	crctl deduce   spec.txt          print the true values derivable now
//	crctl suggest  spec.txt          print the attributes needing user input
//	crctl resolve  spec.txt          resolve interactively on the terminal
//	crctl resolve -answers k=v,...   resolve with scripted answers
//	crctl session -server URL spec.txt
//	                                 resolve interactively against a crserve
//	                                 instance: the server holds the entity's
//	                                 incremental session between rounds, so
//	                                 each answer is one small HTTP exchange
//	                                 (-answers works here too)
//
// Specification files use the textio format; see internal/textio.
package main

import (
	"os"

	"conflictres/internal/cli"
)

func main() {
	os.Exit(cli.Run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
