// Command crbench turns `go test -bench` output into a committed JSON
// artifact (BENCH_N.json) and compares two artifacts for regressions, so CI
// can track the performance trajectory of the resolution engine across PRs.
//
// Usage:
//
//	go test -bench 'Resolve|Solver' -benchmem ./... | crbench -emit BENCH_3.json
//	crbench -compare BENCH_2.json BENCH_3.json
//
// Emit parses benchmark result lines from stdin (name, iterations, then
// value/unit pairs: ns/op, B/op, allocs/op and any custom metrics) and
// writes them keyed by benchmark name.
//
// Compare prints a per-benchmark delta for ns/op and allocs/op — both
// old -> new values with their relative change — and flags either moving
// beyond ±25% (time is noisy on shared runners; allocation counts are
// deterministic, so an allocs/op regression is a real code change).
// Warnings only: the exit code stays 0, so the CI step is non-blocking by
// design (the committed artifact trail is the durable record).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"conflictres/internal/version"
)

// Result is one benchmark's measurements.
type Result struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// File is the artifact layout.
type File struct {
	Go         string            `json:"go"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	var (
		emit        = flag.String("emit", "", "parse `go test -bench` output on stdin and write the JSON artifact to this path")
		compare     = flag.Bool("compare", false, "compare two artifacts: crbench -compare OLD.json NEW.json")
		threshold   = flag.Float64("threshold", 0.25, "relative change flagged by -compare")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("crbench"))
		return
	}
	switch {
	case *emit != "":
		if err := runEmit(*emit); err != nil {
			fmt.Fprintln(os.Stderr, "crbench:", err)
			os.Exit(1)
		}
	case *compare:
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "crbench: -compare needs exactly two artifact paths")
			os.Exit(2)
		}
		if err := runCompare(flag.Arg(0), flag.Arg(1), *threshold); err != nil {
			fmt.Fprintln(os.Stderr, "crbench:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runEmit(path string) error {
	f := File{Go: runtime.Version(), Benchmarks: map[string]Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw output through for the CI log
		name, res, ok := parseLine(line)
		if ok {
			f.Benchmarks[name] = res
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(f.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	out, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "crbench: wrote %d benchmarks to %s\n", len(f.Benchmarks), path)
	return nil
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkResolveLoopSession-8   20   18693091 ns/op   1.25 extends/op   10180448 B/op   176213 allocs/op
func parseLine(line string) (string, Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		// Strip the -GOMAXPROCS suffix when present.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Result{}, false
	}
	res := Result{Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = val
		case "B/op":
			res.BytesPerOp = val
		case "allocs/op":
			res.AllocsOp = val
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = val
		}
	}
	if res.NsPerOp == 0 {
		return "", Result{}, false
	}
	return name, res, true
}

func load(path string) (File, error) {
	var f File
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

func runCompare(oldPath, newPath string, threshold float64) error {
	oldF, err := load(oldPath)
	if err != nil {
		return err
	}
	newF, err := load(newPath)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(newF.Benchmarks))
	for name := range newF.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	regressions := 0
	for _, name := range names {
		nw := newF.Benchmarks[name]
		od, ok := oldF.Benchmarks[name]
		if !ok {
			fmt.Printf("  new       %-44s %12.0f ns/op %10.0f allocs/op\n", name, nw.NsPerOp, nw.AllocsOp)
			continue
		}
		dNs := rel(od.NsPerOp, nw.NsPerOp)
		dAl := rel(od.AllocsOp, nw.AllocsOp)
		tag := "ok"
		switch {
		case dNs > threshold || dAl > threshold:
			tag = "REGRESSION"
			regressions++
		case dNs < -threshold || dAl < -threshold:
			tag = "improved"
		}
		fmt.Printf("  %-9s %-44s %12.0f -> %12.0f ns/op (%+5.1f%%)  %10.0f -> %10.0f allocs/op (%+5.1f%%)\n",
			tag, name, od.NsPerOp, nw.NsPerOp, 100*dNs, od.AllocsOp, nw.AllocsOp, 100*dAl)
	}
	for name := range oldF.Benchmarks {
		if _, ok := newF.Benchmarks[name]; !ok {
			fmt.Printf("  gone      %s\n", name)
		}
	}
	if regressions > 0 {
		fmt.Printf("crbench: %d possible regression(s) beyond %.0f%% in ns/op or allocs/op — non-blocking, see the committed artifact trail\n",
			regressions, 100*threshold)
	}
	return nil
}

// rel returns (new-old)/old, 0 when old is 0.
func rel(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old
}
