package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"conflictres"
	"conflictres/internal/dataset"
	"conflictres/internal/live"
)

// followState is one output line of -follow mode: the entity's resolution
// state after folding the input row in, emitted per input row and flushed,
// so downstream consumers tail a continuously consistent view.
type followState struct {
	Key      string         `json:"key"`
	Rows     int            `json:"rows"`
	Valid    bool           `json:"valid"`
	Complete bool           `json:"complete"`
	Resolved map[string]any `json:"resolved,omitempty"`
	Tuple    []any          `json:"tuple,omitempty"`
	// Extended reports whether this row's delta was applied incrementally
	// (absent on the entity's first row, which pays the initial build).
	Extended *bool  `json:"extended,omitempty"`
	Error    string `json:"error,omitempty"`
}

// runFollow is crresolve -follow: a change-data-capture tail. Input must be
// NDJSON, one row object per line, in arrival order; rows are routed to
// per-entity live sessions by the key columns, each row re-resolves its
// entity incrementally, and one state line per row streams out. Unlike the
// batch path there is no grouping window: entity state persists for the
// whole run, so late rows are never split into a partial re-resolve.
func runFollow(rules *conflictres.RuleSet, in io.Reader, out io.Writer, keys []string, mode conflictres.ResolutionMode, stats bool) int {
	rd, err := dataset.NewNDJSONReader(in, rules.Schema(), keys)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crresolve:", err)
		return 1
	}
	reg := live.NewRegistry(0, 0) // unbounded: the tail owns its entities
	defer reg.Close()
	w := bufio.NewWriter(out)
	enc := json.NewEncoder(w)
	rowsIn, badRows := 0, 0
	for {
		row, err := rd.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			if _, ok := err.(*dataset.RowError); ok {
				badRows++
				enc.Encode(&followState{Error: err.Error()})
				w.Flush()
				continue
			}
			fmt.Fprintln(os.Stderr, "crresolve:", err)
			return 1
		}
		rowsIn++
		key := dataset.DisplayKey(row.Key)
		var sources []string
		if row.Source != "" {
			sources = []string{row.Source}
		}
		res, err := reg.Upsert(row.Key, rules, "follow", live.Op{
			Rows: []conflictres.Tuple{row.Tuple}, Sources: sources, Mode: mode,
		})
		if err != nil {
			badRows++
			enc.Encode(&followState{Key: key, Error: err.Error()})
			w.Flush()
			continue
		}
		st := res.State
		line := &followState{Key: key, Rows: st.Rows, Valid: st.Valid}
		if !res.Created {
			extended := res.Extended
			line.Extended = &extended
		}
		if st.Valid {
			sch := rules.Schema()
			line.Resolved = make(map[string]any, len(st.Resolved))
			for a, v := range st.Resolved {
				line.Resolved[sch.Name(a)] = v.AsJSON()
			}
			line.Tuple = make([]any, len(st.Tuple))
			for i, v := range st.Tuple {
				line.Tuple[i] = v.AsJSON()
			}
			line.Complete = len(st.Resolved) == sch.Len()
		}
		enc.Encode(line)
		w.Flush()
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "crresolve:", err)
		return 1
	}
	if stats {
		c := reg.CountersSnapshot()
		fmt.Fprintf(os.Stderr, "crresolve: follow: %d rows over %d entities (%d bad), %d incremental extends, %d rebuilds\n",
			rowsIn, reg.Live(), badRows, c.Extends, c.Rebuilds)
	}
	return 0
}
