// Command crresolve resolves a whole dataset in one streaming pass: rows
// are grouped into entities by a key, resolved in parallel against a
// compiled rule set, and written back out one resolved tuple per entity.
//
// Usage:
//
//	crresolve -rules rules.cr -key name [-in data.csv] [-out resolved.csv]
//	          [-format csv|ndjson] [-output-format csv|ndjson]
//	          [-shards N] [-window N] [-sorted] [-max-rounds N] [-stats]
//	          [-follow] [-mode sat|latest-writer-wins|highest-trust|consensus]
//	          [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// The rules file uses the textio format restricted to schema/sigma/gamma
// sections (see CONSTRAINTS.md); crgen -format csv emits a matching
// data.csv + rules.cr pair. Input defaults to stdin and output to stdout,
// so the tool composes in pipelines:
//
//	crgen -dataset person -entities 2000 -format csv -out ./data
//	crresolve -rules ./data/rules.cr -key entity -sorted -stats \
//	          -in ./data/data.csv -out resolved.csv
//
// Pass -follow for the change-data-capture tail: NDJSON rows in arrival
// order (any interleaving of entities), one entity state line out per row
// in, flushed immediately. Entity state persists for the whole run, so each
// row re-resolves its entity incrementally instead of re-encoding it:
//
//	tail -f updates.ndjson | crresolve -rules rules.cr -key name -follow
//
// Pass -sorted when the input is clustered by key (crgen output is): the
// engine then flushes each entity as soon as its last row has passed and
// memory stays constant in the input size. Per-entity failures are
// reported in the output's error column, not as a process failure; the
// exit code is 0 when the stream itself was processed, 1 on input/output
// errors, 2 on usage errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"conflictres"
	"conflictres/internal/version"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("crresolve", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		rulesPath   = fs.String("rules", "", "rules file: schema/sigma/gamma in textio format (required)")
		keyCols     = fs.String("key", "", "comma-separated entity key column(s) (required)")
		inPath      = fs.String("in", "", "input file (default stdin)")
		outPath     = fs.String("out", "", "output file (default stdout)")
		format      = fs.String("format", "csv", "input format: csv | ndjson")
		outFormat   = fs.String("output-format", "", "output format: csv | ndjson (default: same as input)")
		shards      = fs.Int("shards", 0, "resolution worker shards (0 = GOMAXPROCS)")
		window      = fs.Int("window", 0, "max rows buffered while grouping (0 = default 65536)")
		sorted      = fs.Bool("sorted", false, "input is clustered by key: flush each entity eagerly")
		maxRounds   = fs.Int("max-rounds", 8, "maximum resolution rounds per entity")
		maxRows     = fs.Int("max-entity-rows", 0, "per-entity row limit (0 = default 10000, negative disables)")
		follow      = fs.Bool("follow", false, "change-data-capture tail: NDJSON rows in arrival order; each row re-resolves its entity incrementally and emits one state line")
		modeName    = fs.String("mode", "", "resolution strategy: sat (default) | latest-writer-wins | highest-trust | consensus")
		stats       = fs.Bool("stats", false, "print run statistics to stderr")
		cpuProfile  = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile  = fs.String("memprofile", "", "write a heap profile (taken after the run) to this file")
		showVersion = fs.Bool("version", false, "print version and exit")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: crresolve -rules rules.cr -key col[,col...] [flags] [-in data.csv] [-out resolved.csv]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if *showVersion {
		fmt.Println(version.String("crresolve"))
		return 0
	}
	if *rulesPath == "" || *keyCols == "" || fs.NArg() != 0 {
		fs.Usage()
		return 2
	}

	strat, err := conflictres.ParseStrategy(*modeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crresolve:", err)
		return 2
	}
	mode := conflictres.ResolutionMode{Strategy: strat}

	rules, err := conflictres.LoadRulesFile(*rulesPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crresolve:", err)
		return 1
	}

	in := io.Reader(os.Stdin)
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crresolve:", err)
			return 1
		}
		defer f.Close()
		in = f
	}
	out := io.Writer(os.Stdout)
	var outFile *os.File
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crresolve:", err)
			return 1
		}
		outFile = f
		out = f
	}

	var keys []string
	for _, k := range strings.Split(*keyCols, ",") {
		if k = strings.TrimSpace(k); k != "" {
			keys = append(keys, k)
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crresolve:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "crresolve:", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "crresolve:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "crresolve:", err)
			}
		}()
	}

	if *follow {
		// -follow is NDJSON-only; the -format default (csv) is overridden
		// implicitly, but an explicit -format csv is a usage error.
		formatSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "format" {
				formatSet = true
			}
		})
		if formatSet && *format != "ndjson" {
			fmt.Fprintln(os.Stderr, "crresolve: -follow requires NDJSON input (-format ndjson)")
			return 2
		}
		code := runFollow(rules, in, out, keys, mode, *stats)
		if outFile != nil {
			if err := outFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "crresolve:", err)
				return 1
			}
		}
		return code
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	st, err := conflictres.ResolveDataset(ctx, rules, in, out, conflictres.DatasetOptions{
		KeyColumns:    keys,
		InputFormat:   *format,
		OutputFormat:  *outFormat,
		Shards:        *shards,
		WindowRows:    *window,
		Sorted:        *sorted,
		MaxRounds:     *maxRounds,
		MaxEntityRows: *maxRows,
		Mode:          mode,
	})
	if *stats && st != nil {
		fmt.Fprintln(os.Stderr, "crresolve:", st)
		fmt.Fprintf(os.Stderr, "crresolve: solver time validity=%s deduce=%s suggest=%s (wall %s, %d windows)\n",
			st.Timing.Validity.Round(1e6), st.Timing.Deduce.Round(1e6),
			st.Timing.Suggest.Round(1e6), st.Wall.Round(1e6), st.Windows)
	}
	if st != nil && st.SplitEntities > 0 {
		fmt.Fprintf(os.Stderr, "crresolve: warning: %d entities had rows split across grouping windows and were resolved more than once from partial instances; raise -window or cluster the input by key (and pass -sorted)\n",
			st.SplitEntities)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "crresolve:", err)
		if outFile != nil {
			outFile.Close()
		}
		return 1
	}
	// A failed close can report the deferred write-back of everything
	// buffered so far; that is an output error, not a success.
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "crresolve:", err)
			return 1
		}
	}
	return 0
}
