// Command crlint runs the project's static-analysis suite (see
// internal/analysis): lockbalance, poolpair, wireerr, encodingalias and
// metricname. It exits non-zero when any finding survives waiver filtering,
// so CI can run it as a blocking step:
//
//	go run ./cmd/crlint ./...
//
// Waive a by-contract site with a reasoned directive on the offending line
// or the line above:
//
//	//crlint:ignore <analyzer>[,<analyzer>...] <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"conflictres/internal/analysis"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: crlint [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crlint: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.RunAnalyzers(prog, analysis.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "crlint: %v\n", err)
		os.Exit(2)
	}

	cwd, _ := os.Getwd()
	for _, d := range diags {
		pos := d.Pos
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				pos.Filename = rel
			}
		}
		fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "crlint: %d finding(s) in %d package(s)\n", len(diags), len(prog.Packages))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "crlint: %d package(s) clean\n", len(prog.Packages))
}
