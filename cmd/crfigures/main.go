// Command crfigures regenerates every table and figure of the paper's
// experimental study (Fan et al., ICDE 2013, Figure 8(a)–(p) plus the
// dataset statistics and headline aggregates).
//
// Usage:
//
//	crfigures                 # all figures at the default (laptop) scale
//	crfigures -scale paper    # the paper's dataset sizes (slow)
//	crfigures -only 8e,8f     # a subset of figures
//
// Absolute milliseconds differ from the paper's 2013 testbed; the shapes —
// who wins, by what factor, how curves move — are the reproduction target.
// See EXPERIMENTS.md for the side-by-side record.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"conflictres/internal/bench"
	"conflictres/internal/datagen"
	"conflictres/internal/version"
)

type scaleCfg struct {
	nbaPlayers      int
	careerPersons   int
	personAccuracyN int // entities for accuracy figures
	personAccuracyS int // max tuples for accuracy figures
	personTimingPer int // entities per timing bucket
	personTimingMax int // largest timing entity
	interactionsNBA int
	interactionsCar int
	interactionsPer int
}

var scales = map[string]scaleCfg{
	// Laptop scale: minutes, preserves all shapes.
	"default": {
		nbaPlayers: 60, careerPersons: 20,
		personAccuracyN: 30, personAccuracyS: 50,
		personTimingPer: 3, personTimingMax: 2000,
		interactionsNBA: 2, interactionsCar: 2, interactionsPer: 3,
	},
	// Paper scale: the sizes reported in Section VI (expect a long run).
	"paper": {
		nbaPlayers: 760, careerPersons: 65,
		personAccuracyN: 100, personAccuracyS: 100,
		personTimingPer: 5, personTimingMax: 10000,
		interactionsNBA: 2, interactionsCar: 2, interactionsPer: 3,
	},
	// Smoke scale for CI.
	"smoke": {
		nbaPlayers: 25, careerPersons: 10,
		personAccuracyN: 10, personAccuracyS: 30,
		personTimingPer: 2, personTimingMax: 400,
		interactionsNBA: 2, interactionsCar: 2, interactionsPer: 3,
	},
}

func main() {
	var (
		scale       = flag.String("scale", "default", "default | paper | smoke")
		only        = flag.String("only", "", "comma-separated figure ids (e.g. 8a,8e,8n); empty = all")
		seed        = flag.Int64("seed", 1, "generator seed")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("crfigures"))
		return
	}
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "crfigures: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	cfg, ok := scales[*scale]
	if !ok {
		fmt.Fprintf(os.Stderr, "crfigures: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToLower(id)] = true
		}
	}
	sel := func(id string) bool {
		if len(want) == 0 {
			return true
		}
		return want[strings.ToLower(strings.NewReplacer("(", "", ")", "").Replace(id))]
	}
	w := os.Stdout

	fmt.Fprintf(w, "conflictres experiment harness — scale %q\n\n", *scale)

	// Datasets. Timing figures use size-bucketed Person samples; accuracy
	// figures use a moderate-size Person population.
	nba := datagen.NBA(datagen.NBAConfig{Players: cfg.nbaPlayers, Seed: *seed})
	career := datagen.Career(datagen.CareerConfig{Persons: cfg.careerPersons, Seed: *seed})
	personAcc := datagen.Person(datagen.PersonConfig{
		Entities: cfg.personAccuracyN, MinTuples: 2, MaxTuples: cfg.personAccuracyS, Seed: *seed})

	personBuckets := bench.PersonBuckets(cfg.personTimingMax)
	var personTimingEntities []*datagen.Entity
	personTiming := &datagen.Dataset{Name: "Person", Schema: personAcc.Schema,
		Sigma: personAcc.Sigma, Gamma: personAcc.Gamma}
	for bi, b := range personBuckets {
		sub := datagen.Person(datagen.PersonConfig{
			Entities: cfg.personTimingPer, MinTuples: b[0], MaxTuples: b[1],
			Seed: *seed + int64(bi)})
		personTimingEntities = append(personTimingEntities, sub.Entities...)
	}
	personTiming.Entities = personTimingEntities

	bench.DatasetsTable(w, nba, career, personAcc)

	// Simulated users answer a bounded number of suggested attributes per
	// round, spreading resolution over the paper's 2-3 rounds.
	userNBA := bench.UserConfig{MaxPerRound: 2}
	userCar := bench.UserConfig{MaxPerRound: 1}
	userPer := bench.UserConfig{MaxPerRound: 2}

	if sel("8a") {
		fig := bench.ValidityTiming(nba, bench.NBABuckets)
		fig.Fprint(w)
		figP := bench.ValidityTiming(personTiming, personBuckets)
		figP.Fprint(w)
	}
	if sel("8b") {
		fig := bench.DeduceTiming(nba, bench.NBABuckets, true)
		fig.Fprint(w)
		figP := bench.DeduceTiming(personTiming, personBuckets, false)
		figP.Fprint(w)
	}
	if sel("8c") {
		fig := bench.OverallTiming(nba, bench.NBABuckets, "8(c)")
		fig.Fprint(w)
	}
	if sel("8d") {
		fig := bench.OverallTiming(personTiming, personBuckets, "8(d)")
		fig.Fprint(w)
	}
	if sel("8e") {
		fig := bench.InteractionCurve(nba, cfg.interactionsNBA, "8(e)", userNBA)
		fig.Fprint(w)
	}
	if sel("8i") {
		fig := bench.InteractionCurve(career, cfg.interactionsCar, "8(i)", userCar)
		fig.Fprint(w)
	}
	if sel("8m") {
		fig := bench.InteractionCurve(personAcc, cfg.interactionsPer, "8(m)", userPer)
		fig.Fprint(w)
	}

	type accuracySpec struct {
		id   string
		ds   *datagen.Dataset
		mode bench.Mode
		k    int
		user bench.UserConfig
	}
	accFigs := []accuracySpec{
		{"8f", nba, bench.ModeBoth, cfg.interactionsNBA, userNBA},
		{"8g", nba, bench.ModeSigma, cfg.interactionsNBA, userNBA},
		{"8h", nba, bench.ModeGamma, cfg.interactionsNBA, userNBA},
		{"8j", career, bench.ModeBoth, cfg.interactionsCar, userCar},
		{"8k", career, bench.ModeSigma, cfg.interactionsCar, userCar},
		{"8l", career, bench.ModeGamma, cfg.interactionsCar, userCar},
		{"8n", personAcc, bench.ModeBoth, cfg.interactionsPer, userPer},
		{"8o", personAcc, bench.ModeSigma, cfg.interactionsPer, userPer},
		{"8p", personAcc, bench.ModeGamma, cfg.interactionsPer, userPer},
	}
	results := map[string]bench.Figure{}
	for _, af := range accFigs {
		if !sel(af.id) {
			continue
		}
		fig := bench.AccuracyVsConstraints(af.ds, af.mode, af.k, "8("+af.id[1:]+")", *seed, af.user)
		results[af.id] = fig
		fig.Fprint(w)
	}

	// Headlines per dataset when all three modes were computed.
	for _, h := range []struct{ name, b, s, g string }{
		{"NBA", "8f", "8g", "8h"},
		{"CAREER", "8j", "8k", "8l"},
		{"Person", "8n", "8o", "8p"},
	} {
		if fb, ok := results[h.b]; ok {
			if fs, ok2 := results[h.s]; ok2 {
				if fg, ok3 := results[h.g]; ok3 {
					bench.Headline(w, h.name, fb, fs, fg)
				}
			}
		}
	}
}
