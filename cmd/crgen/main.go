// Command crgen emits simulated datasets (NBA, CAREER, Person) as
// specification files, one per entity, plus a ground-truth file.
//
// Usage:
//
//	crgen -dataset person -entities 100 -out ./persondata
//	crgen -dataset nba -out ./nbadata
//	crgen -dataset career -out ./careerdata
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"conflictres/internal/datagen"
	"conflictres/internal/textio"
)

func main() {
	var (
		dataset  = flag.String("dataset", "person", "person | nba | career")
		entities = flag.Int("entities", 50, "number of entities (person/nba/career)")
		minT     = flag.Int("min-tuples", 2, "minimum tuples per entity (person)")
		maxT     = flag.Int("max-tuples", 100, "maximum tuples per entity (person)")
		seed     = flag.Int64("seed", 1, "generator seed")
		out      = flag.String("out", "", "output directory (required)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "crgen: -out is required")
		os.Exit(2)
	}

	var ds *datagen.Dataset
	switch *dataset {
	case "person":
		ds = datagen.Person(datagen.PersonConfig{
			Entities: *entities, MinTuples: *minT, MaxTuples: *maxT, Seed: *seed})
	case "nba":
		ds = datagen.NBA(datagen.NBAConfig{Players: *entities, Seed: *seed})
	case "career":
		ds = datagen.Career(datagen.CareerConfig{Persons: *entities, Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "crgen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	truthPath := filepath.Join(*out, "truth.txt")
	truthFile, err := os.Create(truthPath)
	if err != nil {
		fatal(err)
	}
	defer truthFile.Close()

	for i, e := range ds.Entities {
		path := filepath.Join(*out, fmt.Sprintf("entity_%05d.spec", i))
		if err := textio.SaveSpecFile(path, e.Spec); err != nil {
			fatal(err)
		}
		fmt.Fprintf(truthFile, "%s\t%s\n", e.ID, e.Truth)
	}
	if err := truthFile.Close(); err != nil {
		fatal(err)
	}
	fmt.Println(ds.Stats())
	fmt.Printf("wrote %d spec files and %s\n", len(ds.Entities), truthPath)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crgen:", err)
	os.Exit(1)
}
