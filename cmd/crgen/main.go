// Command crgen emits simulated datasets (NBA, CAREER, Person) either as
// per-entity specification files or as one flat relation (CSV/NDJSON) plus
// a rules file — the input shape cmd/crresolve consumes — always with a
// ground-truth file.
//
// Usage:
//
//	crgen -dataset person -entities 100 -out ./persondata
//	crgen -dataset nba -out ./nbadata
//	crgen -dataset person -entities 2000 -format csv -out ./data
//	crgen -dataset person -entities 500 -skew zipf -out ./skewed
//
// -format spec (default) writes entity_NNNNN.spec files; -format csv
// writes data.csv (entity-key column + one row per tuple, clustered by
// entity, ready for `crresolve -sorted`) and rules.cr; -format ndjson
// writes data.ndjson the same way.
package main

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"conflictres/internal/datagen"
	"conflictres/internal/relation"
	"conflictres/internal/textio"
	"conflictres/internal/version"
)

func main() {
	var (
		dataset     = flag.String("dataset", "person", "person | nba | career")
		entities    = flag.Int("entities", 50, "number of entities (person/nba/career)")
		minT        = flag.Int("min-tuples", 2, "minimum tuples per entity (person)")
		maxT        = flag.Int("max-tuples", 100, "maximum tuples per entity (person)")
		skew        = flag.String("skew", "uniform", "entity-size distribution (person): uniform | zipf")
		sources     = flag.Int("sources", 0, "simulate N data sources: tag every tuple with a source= column and emit a trust mapping (0 = no provenance)")
		seed        = flag.Int64("seed", 1, "generator seed")
		format      = flag.String("format", "spec", "output shape: spec | csv | ndjson")
		out         = flag.String("out", "", "output directory (required)")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("crgen"))
		return
	}
	if *out == "" || flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: crgen -dataset person|nba|career -out DIR [-format spec|csv|ndjson] [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	switch *format {
	case "spec", "csv", "ndjson":
	default:
		// Reject before the (expensive) generation runs and before any
		// output files are created.
		fmt.Fprintf(os.Stderr, "crgen: unknown format %q\n", *format)
		os.Exit(2)
	}
	switch *skew {
	case datagen.SkewUniform, datagen.SkewZipf:
	default:
		fmt.Fprintf(os.Stderr, "crgen: unknown skew %q\n", *skew)
		os.Exit(2)
	}

	var ds *datagen.Dataset
	switch *dataset {
	case "person":
		ds = datagen.Person(datagen.PersonConfig{
			Entities: *entities, MinTuples: *minT, MaxTuples: *maxT, Seed: *seed, Skew: *skew})
	case "nba":
		ds = datagen.NBA(datagen.NBAConfig{Players: *entities, Seed: *seed})
	case "career":
		ds = datagen.Career(datagen.CareerConfig{Persons: *entities, Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "crgen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	if *sources < 0 {
		fmt.Fprintf(os.Stderr, "crgen: -sources must be >= 0, got %d\n", *sources)
		os.Exit(2)
	}
	// A separate, seed-derived rng keeps the generated data byte-identical
	// with and without provenance (AssignSources is a pure post-pass).
	ds.AssignSources(*sources, *seed+1)

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	truthPath := filepath.Join(*out, "truth.txt")
	truthFile, err := os.Create(truthPath)
	if err != nil {
		fatal(err)
	}
	defer truthFile.Close()
	for _, e := range ds.Entities {
		fmt.Fprintf(truthFile, "%s\t%s\n", e.ID, e.Truth)
	}
	if err := truthFile.Close(); err != nil {
		fatal(err)
	}

	switch *format {
	case "spec":
		for i, e := range ds.Entities {
			path := filepath.Join(*out, fmt.Sprintf("entity_%05d.spec", i))
			if err := textio.SaveSpecFile(path, e.Spec); err != nil {
				fatal(err)
			}
		}
		fmt.Println(ds.Stats())
		fmt.Printf("wrote %d spec files and %s\n", len(ds.Entities), truthPath)
	case "csv", "ndjson":
		rulesPath := filepath.Join(*out, "rules.cr")
		if err := writeFile(rulesPath, func(w *bufio.Writer) error {
			return textio.WriteRules(w, ds.Schema, ds.Sigma, ds.Gamma, ds.Trust)
		}); err != nil {
			fatal(err)
		}
		dataPath := filepath.Join(*out, "data."+*format)
		rows := 0
		err := writeFile(dataPath, func(w *bufio.Writer) error {
			var werr error
			if *format == "csv" {
				rows, werr = writeCSV(w, ds)
			} else {
				rows, werr = writeNDJSON(w, ds)
			}
			return werr
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println(ds.Stats())
		fmt.Printf("wrote %s (%d rows, clustered by entity), %s and %s\n",
			dataPath, rows, rulesPath, truthPath)
		fmt.Printf("resolve with: crresolve -rules %s -key entity -format %s -sorted -stats -in %s\n",
			rulesPath, *format, dataPath)
	}
}

// writeCSV emits the flat relation: an entity-key column plus the schema
// attributes, one row per tuple, entities contiguous.
func writeCSV(w *bufio.Writer, ds *datagen.Dataset) (int, error) {
	cw := csv.NewWriter(w)
	sourced := len(ds.Sources) > 0
	header := append([]string{"entity"}, ds.Schema.Names()...)
	if sourced {
		header = append(header, relation.ReservedColumn)
	}
	if err := cw.Write(header); err != nil {
		return 0, err
	}
	rows := 0
	rec := make([]string, len(header))
	for _, e := range ds.Entities {
		in := e.Spec.TI.Inst
		for _, id := range in.TupleIDs() {
			rec[0] = e.ID
			for i, v := range in.Tuple(id) {
				rec[1+i] = textio.EncodeCell(v)
			}
			if sourced {
				rec[len(rec)-1] = textio.EncodeCell(relation.String(in.Source(id)))
			}
			if err := cw.Write(rec); err != nil {
				return rows, err
			}
			rows++
		}
	}
	cw.Flush()
	return rows, cw.Error()
}

// writeNDJSON emits one JSON object per tuple with the entity key field.
func writeNDJSON(w *bufio.Writer, ds *datagen.Dataset) (int, error) {
	enc := json.NewEncoder(w)
	names := ds.Schema.Names()
	sourced := len(ds.Sources) > 0
	rows := 0
	for _, e := range ds.Entities {
		in := e.Spec.TI.Inst
		for _, id := range in.TupleIDs() {
			obj := make(map[string]any, len(names)+2)
			obj["entity"] = e.ID
			for i, v := range in.Tuple(id) {
				obj[names[i]] = v.AsJSON()
			}
			if sourced {
				obj[relation.ReservedColumn] = in.Source(id)
			}
			if err := enc.Encode(obj); err != nil {
				return rows, err
			}
			rows++
		}
	}
	return rows, nil
}

func writeFile(path string, fill func(*bufio.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := fill(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crgen:", err)
	os.Exit(1)
}
