// Customer-database deduplication: the motivating scenario of the paper's
// introduction ("in a customer database, about 50% of the records may become
// obsolete within two years"). Several CRM systems hold records for the same
// customer; none carries a reliable timestamp. Currency constraints capture
// business rules (membership tiers only upgrade, lifetime spend only grows,
// a cancelled account stays cancelled) and constant CFDs capture reference
// data (dial codes determine the city). The resolver fuses the records into
// the customer's current profile.
package main

import (
	"fmt"
	"log"

	"conflictres"
)

func main() {
	sch := conflictres.MustSchema(
		"customer", "tier", "state", "lifetime_spend", "city", "dial_code", "postcode")
	str := conflictres.String

	currency := []string{
		// Tier ladder: bronze → silver → gold → platinum.
		`t1[tier] = "bronze" & t2[tier] = "silver" -> t1 <[tier] t2`,
		`t1[tier] = "silver" & t2[tier] = "gold" -> t1 <[tier] t2`,
		`t1[tier] = "gold" & t2[tier] = "platinum" -> t1 <[tier] t2`,
		// Account state: active → paused → cancelled (never back).
		`t1[state] = "active" & t2[state] = "paused" -> t1 <[state] t2`,
		`t1[state] = "paused" & t2[state] = "cancelled" -> t1 <[state] t2`,
		`t1[state] = "active" & t2[state] = "cancelled" -> t1 <[state] t2`,
		// Lifetime spend is a monotone counter, and the record with the
		// larger spend carries the fresher contact data.
		`t1[lifetime_spend] < t2[lifetime_spend] -> t1 <[lifetime_spend] t2`,
		`t1[lifetime_spend] < t2[lifetime_spend] & t1[dial_code] != t2[dial_code] -> t1 <[dial_code] t2`,
		`t1[lifetime_spend] < t2[lifetime_spend] & t1[postcode] != t2[postcode] -> t1 <[postcode] t2`,
		// Fresher dial code and postcode mean a fresher city.
		`t1 <[dial_code] t2 & t1 <[postcode] t2 -> t1 <[city] t2`,
	}
	cfds := []string{
		`dial_code = "020" => city = "London"`,
		`dial_code = "0131" => city = "Edinburgh"`,
		`dial_code = "0161" => city = "Manchester"`,
	}

	in := conflictres.NewInstance(sch)
	// Web shop record (old).
	in.MustAdd(conflictres.Tuple{str("C-1042"), str("bronze"), str("active"),
		conflictres.Int(180), str("London"), str("020"), str("SW1A 1AA")})
	// Support-desk record (mid).
	in.MustAdd(conflictres.Tuple{str("C-1042"), str("silver"), str("active"),
		conflictres.Int(950), str("London"), str("020"), str("N1 9GU")})
	// Billing record (newest, but the city column was never migrated).
	in.MustAdd(conflictres.Tuple{str("C-1042"), str("gold"), str("paused"),
		conflictres.Int(2400), conflictres.Null, str("0131"), str("EH1 1YZ")})

	spec, err := conflictres.NewSpec(in, currency, cfds)
	if err != nil {
		log.Fatal(err)
	}

	if !conflictres.Validate(spec) {
		log.Fatal("the records contradict the business rules")
	}

	res, err := conflictres.Resolve(spec, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Current profile for customer C-1042:")
	for _, a := range sch.Attrs() {
		v, ok := res.Resolved[a]
		if !ok {
			fmt.Printf("  %-15s (needs steward input)\n", sch.Name(a))
			continue
		}
		fmt.Printf("  %-15s %v\n", sch.Name(a), v)
	}
	fmt.Printf("\nresolved %d/%d attributes without timestamps; city recovered via the 0131 dial-code rule\n",
		len(res.Resolved), sch.Len())
}
