// Quickstart: the running example of the paper (Fan et al., ICDE 2013,
// Figures 1–3) on the public API. Two entity instances from the "V-J Day in
// Times Square" photograph — nurse Edith Shain and sailor George Mendonça —
// are resolved into single true tuples without any timestamps.
//
// Edith resolves fully automatically (Example 2); George needs one round of
// user input for his status (Examples 6, 9, 12), after which everything else
// follows.
package main

import (
	"fmt"
	"log"

	"conflictres"
)

func main() {
	sch := conflictres.MustSchema("name", "status", "job", "kids", "city", "AC", "zip", "county")
	str := conflictres.String

	currency := []string{
		// Status only moves working → retired → deceased (ϕ1, ϕ2).
		`t1[status] = "working" & t2[status] = "retired" -> t1 <[status] t2`,
		`t1[status] = "retired" & t2[status] = "deceased" -> t1 <[status] t2`,
		// Job moves sailor → veteran (ϕ3).
		`t1[job] = "sailor" & t2[job] = "veteran" -> t1 <[job] t2`,
		// The number of kids grows monotonically (ϕ4).
		`t1[kids] < t2[kids] -> t1 <[kids] t2`,
		// A more current status implies more current job, AC and zip (ϕ5–ϕ7).
		`t1 <[status] t2 -> t1 <[job] t2`,
		`t1 <[status] t2 -> t1 <[AC] t2`,
		`t1 <[status] t2 -> t1 <[zip] t2`,
		// More current city and zip imply a more current county (ϕ8).
		`t1 <[city] t2 & t1 <[zip] t2 -> t1 <[county] t2`,
	}
	cfds := []string{
		`AC = "213" => city = "LA"`, // ψ1
		`AC = "212" => city = "NY"`, // ψ2
	}

	// ---- Edith Shain (E1 of Figure 2) -----------------------------------
	edith := conflictres.NewInstance(sch)
	edith.MustAdd(conflictres.Tuple{str("Edith Shain"), str("working"), str("nurse"),
		conflictres.Int(0), str("NY"), str("212"), str("10036"), str("Manhattan")})
	edith.MustAdd(conflictres.Tuple{str("Edith Shain"), str("retired"), str("n/a"),
		conflictres.Int(3), str("SFC"), str("415"), str("94924"), str("Dogtown")})
	edith.MustAdd(conflictres.Tuple{str("Edith Shain"), str("deceased"), str("n/a"),
		conflictres.Null, str("LA"), str("213"), str("90058"), str("Vermont")})

	spec, err := conflictres.NewSpec(edith, currency, cfds)
	if err != nil {
		log.Fatal(err)
	}
	res, err := conflictres.Resolve(spec, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Edith Shain — resolved automatically (paper Example 2):")
	printResult(sch, res)

	// ---- George Mendonça (E2 of Figure 2) --------------------------------
	george := conflictres.NewInstance(sch)
	george.MustAdd(conflictres.Tuple{str("George Mendonca"), str("working"), str("sailor"),
		conflictres.Int(0), str("Newport"), str("401"), str("02840"), str("Rhode Island")})
	george.MustAdd(conflictres.Tuple{str("George Mendonca"), str("retired"), str("veteran"),
		conflictres.Int(2), str("NY"), str("212"), str("12404"), str("Accord")})
	george.MustAdd(conflictres.Tuple{str("George Mendonca"), str("unemployed"), str("n/a"),
		conflictres.Int(2), str("Chicago"), str("312"), str("60653"), str("Bronzeville")})

	gspec, err := conflictres.NewSpec(george, currency, cfds)
	if err != nil {
		log.Fatal(err)
	}

	// First, see what is derivable without help (paper Example 3).
	auto, err := conflictres.Deduce(gspec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGeorge Mendonca — derivable without interaction: %d attributes\n", len(auto))
	for n, v := range auto {
		fmt.Printf("  %-8s %s\n", n, v)
	}

	// The suggestion engine identifies status as the one attribute to ask
	// about (paper Example 12).
	sug, err := conflictres.SuggestOnce(gspec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSuggestion — please confirm:")
	for _, a := range sug.Attrs {
		fmt.Printf("  %s %v\n", sch.Name(a), sug.Candidates[a])
	}

	// A user who knows George retired answers; the rest follows (Example 6).
	oracle := conflictres.OracleFunc(func(s conflictres.Suggestion) map[conflictres.Attr]conflictres.Value {
		out := map[conflictres.Attr]conflictres.Value{}
		for _, a := range s.Attrs {
			if sch.Name(a) == "status" {
				out[a] = str("retired")
			}
		}
		return out
	})
	gres, err := conflictres.Resolve(gspec, oracle)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGeorge Mendonca — resolved after %d interaction(s):\n", gres.Interactions)
	printResult(sch, gres)
}

func printResult(sch *conflictres.Schema, res *conflictres.Result) {
	if !res.Valid {
		fmt.Println("  specification is INVALID")
		return
	}
	for _, a := range sch.Attrs() {
		v, ok := res.Resolved[a]
		if !ok {
			fmt.Printf("  %-8s (unresolved)\n", sch.Name(a))
			continue
		}
		fmt.Printf("  %-8s %s\n", sch.Name(a), v)
	}
}
