// Batch resolution over the simulated NBA dataset: generate players with
// ground truth, resolve each entity with and without a simulated user, and
// score precision/recall/F-measure the way the paper's experiments do
// (Section VI). This example exercises the internal dataset simulator and
// metrics — the parts of the repository that regenerate Figure 8.
package main

import (
	"flag"
	"fmt"
	"log"

	"conflictres/internal/core"
	"conflictres/internal/datagen"
	"conflictres/internal/encode"
	"conflictres/internal/metrics"
	"conflictres/internal/pick"
)

func main() {
	players := flag.Int("players", 40, "number of simulated players")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	ds := datagen.NBA(datagen.NBAConfig{Players: *players, Seed: *seed})
	fmt.Println(ds.Stats())

	var auto, interactive, baseline metrics.Counts
	rounds := 0
	for _, e := range ds.Entities {
		// Automatic pass: currency + consistency inference only.
		enc := encode.Build(e.Spec, encode.Options{})
		od, ok := core.DeduceOrder(enc)
		if !ok {
			log.Fatalf("entity %s: inconsistent specification", e.ID)
		}
		auto.Add(metrics.Evaluate(e.Spec.TI.Inst, core.TrueValues(enc, od), e.Truth))

		// Interactive pass: a simulated user answers up to two suggested
		// attributes per round.
		out, err := core.Resolve(e.Spec,
			&core.SimulatedUser{Truth: e.Truth, MaxPerRound: 2}, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		interactive.Add(metrics.Evaluate(e.Spec.TI.Inst, out.Resolved, e.Truth))
		rounds += out.Interactions

		// Traditional baseline.
		got := pick.Pick(e.Spec, *seed)
		baseline.Add(metrics.EvaluateTuple(e.Spec.TI.Inst, got, e.Truth))
	}

	fmt.Printf("\n%-28s %s\n", "automatic (0 interactions):", auto)
	fmt.Printf("%-28s %s\n", "with simulated user:", interactive)
	fmt.Printf("%-28s %s\n", "Pick baseline:", baseline)
	fmt.Printf("\naverage interaction rounds per player: %.2f\n",
		float64(rounds)/float64(len(ds.Entities)))
	if f, p := interactive.F(), baseline.F(); p > 0 {
		fmt.Printf("currency+consistency beats Pick by %+.0f%% F-measure\n", 100*(f/p-1))
	}
}
