// Interactive resolution on the terminal: load a specification (George
// Mendonça by default, or any textio file given as an argument), let the
// framework deduce what it can, and prompt for the suggested attributes
// until the entity's true tuple is found — the workflow of the paper's
// Figure 4 with a human in the loop.
//
// Run it and answer the prompt (for George, try "retired"):
//
//	go run ./examples/interactive
//	go run ./examples/interactive my-entity.spec
package main

import (
	"bufio"
	"fmt"
	"log"
	"os"
	"strings"

	"conflictres"
	"conflictres/internal/relation"
)

func main() {
	var spec *conflictres.Spec
	var err error
	if len(os.Args) > 1 {
		spec, err = conflictres.LoadSpecFile(os.Args[1])
	} else {
		spec, err = georgeSpec()
	}
	if err != nil {
		log.Fatal(err)
	}
	sch := spec.Schema()

	fmt.Printf("entity instance with %d tuples over %s\n", spec.Instance().Len(), sch)

	// One incremental session carries the whole conversation: validity,
	// deduction and every Se ⊕ Ot step reuse the same solver state.
	sess, err := conflictres.NewSession(spec)
	if err != nil {
		log.Fatal(err)
	}
	if !sess.Valid() {
		log.Fatal("the specification is invalid: its orders and constraints contradict each other")
	}

	reader := bufio.NewReader(os.Stdin)
	for round := 0; round < 8 && !sess.Complete(); round++ {
		sug, err := sess.Suggest()
		if err != nil {
			log.Fatal(err)
		}
		if len(sug.Attrs) == 0 {
			break
		}
		fmt.Println("\nthe framework needs your input:")
		answers := map[string]conflictres.Value{}
		for _, a := range sug.Attrs {
			var cands []string
			for _, v := range sug.Candidates[a] {
				cands = append(cands, v.String())
			}
			fmt.Printf("  %s (candidates: %s) = ? ", sch.Name(a), strings.Join(cands, ", "))
			line, err := reader.ReadString('\n')
			if err != nil {
				break
			}
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			v, err := relation.ParseValue(line)
			if err != nil {
				fmt.Println("  cannot parse:", err)
				continue
			}
			answers[sch.Name(a)] = v
		}
		if len(answers) == 0 {
			break
		}
		if err := sess.Apply(answers); err != nil {
			// Contradictory input: the session rolled back to its last
			// consistent state; report and stop asking.
			fmt.Println("\n", err)
			break
		}
	}

	res := sess.Result()
	fmt.Printf("\nresolved after %d answered round(s):\n", sess.Interactions())
	for _, a := range sch.Attrs() {
		if v, ok := res.Resolved[a]; ok {
			fmt.Printf("  %-8s %s\n", sch.Name(a), v)
		} else {
			fmt.Printf("  %-8s (undetermined)\n", sch.Name(a))
		}
	}
	st := sess.Stats()
	fmt.Printf("\nsession: %d solver build(s), %d incremental extension(s), %d SAT queries\n",
		st.Rebuilds, st.Extends, st.Solves)
}

func georgeSpec() (*conflictres.Spec, error) {
	sch := conflictres.MustSchema("name", "status", "job", "kids", "city", "AC", "zip", "county")
	str := conflictres.String
	in := conflictres.NewInstance(sch)
	in.MustAdd(conflictres.Tuple{str("George Mendonca"), str("working"), str("sailor"),
		conflictres.Int(0), str("Newport"), str("401"), str("02840"), str("Rhode Island")})
	in.MustAdd(conflictres.Tuple{str("George Mendonca"), str("retired"), str("veteran"),
		conflictres.Int(2), str("NY"), str("212"), str("12404"), str("Accord")})
	in.MustAdd(conflictres.Tuple{str("George Mendonca"), str("unemployed"), str("n/a"),
		conflictres.Int(2), str("Chicago"), str("312"), str("60653"), str("Bronzeville")})
	return conflictres.NewSpec(in,
		[]string{
			`t1[status] = "working" & t2[status] = "retired" -> t1 <[status] t2`,
			`t1[status] = "retired" & t2[status] = "deceased" -> t1 <[status] t2`,
			`t1[job] = "sailor" & t2[job] = "veteran" -> t1 <[job] t2`,
			`t1[kids] < t2[kids] -> t1 <[kids] t2`,
			`t1 <[status] t2 -> t1 <[job] t2`,
			`t1 <[status] t2 -> t1 <[AC] t2`,
			`t1 <[status] t2 -> t1 <[zip] t2`,
			`t1 <[city] t2 & t1 <[zip] t2 -> t1 <[county] t2`,
		},
		[]string{
			`AC = "213" => city = "LA"`,
			`AC = "212" => city = "NY"`,
		})
}
