package conflictres_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links [text](target).
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocLinks verifies that every relative link in the repository's
// markdown files points at a file or directory that exists, and that the
// documents the code references by name are present. It is the link-check
// half of the CI docs job.
func TestDocLinks(t *testing.T) {
	for _, must := range []string{
		"README.md", "DESIGN.md", "CONSTRAINTS.md", "ROADMAP.md",
		filepath.Join("docs", "OPERATIONS.md"),
	} {
		if _, err := os.Stat(must); err != nil {
			t.Errorf("required document missing: %s", must)
		}
	}

	var mdFiles []string
	for _, glob := range []string{"*.md", "docs/*.md"} {
		m, err := filepath.Glob(glob)
		if err != nil {
			t.Fatal(err)
		}
		mdFiles = append(mdFiles, m...)
	}
	if len(mdFiles) < 5 {
		t.Fatalf("suspiciously few markdown files: %v", mdFiles)
	}
	for _, md := range mdFiles {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"),
				strings.HasPrefix(target, "#"):
				continue // external or intra-document
			}
			target, _, _ = strings.Cut(target, "#")
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken relative link %q (resolved %s)", md, m[1], resolved)
			}
		}
	}
}
