package conflictres

import (
	"fmt"
	"io"

	"conflictres/internal/constraint"
	"conflictres/internal/core"
	"conflictres/internal/encode"
	"conflictres/internal/model"
	"conflictres/internal/relation"
	"conflictres/internal/textio"
)

// Re-exported data-model types. The facade keeps downstream users off the
// internal packages while staying zero-cost (type aliases).
type (
	// Schema is an ordered list of attribute names.
	Schema = relation.Schema
	// Attr identifies an attribute by schema position.
	Attr = relation.Attr
	// Value is a typed attribute value (string, int, float or null).
	Value = relation.Value
	// Tuple is a row over a schema.
	Tuple = relation.Tuple
	// Instance is an entity instance: tuples describing one entity.
	Instance = relation.Instance
	// TupleID identifies a tuple inside an instance.
	TupleID = relation.TupleID
	// Suggestion asks the user for the true values of some attributes.
	Suggestion = core.Suggestion
	// Oracle supplies user input during interactive resolution.
	Oracle = core.Oracle
	// OracleFunc adapts a function to the Oracle interface.
	OracleFunc = core.OracleFunc
	// SimulatedUser answers suggestions from a known ground-truth tuple.
	SimulatedUser = core.SimulatedUser
	// Timing breaks resolution time down by framework phase.
	Timing = core.Timing
	// SessionStats reports a resolution session's solver-reuse counters.
	SessionStats = core.SessionStats
)

// Value constructors and helpers.
var (
	// String builds a string value.
	String = relation.String
	// Int builds an integer value.
	Int = relation.Int
	// Float builds a float value.
	Float = relation.Float
	// Null is the missing value; it ranks lowest in every currency order.
	Null = relation.Null
	// NewSchema builds a schema from attribute names.
	NewSchema = relation.NewSchema
	// MustSchema is NewSchema that panics on error.
	MustSchema = relation.MustSchema
	// NewInstance creates an empty entity instance.
	NewInstance = relation.NewInstance
)

// Spec is a conflict-resolution specification Se = (It, Σ, Γ): an entity
// instance with optional explicit currency orders, currency constraints and
// constant CFDs.
type Spec struct {
	m *model.Spec
}

// NewSpec builds a specification from an entity instance and constraint
// texts. Currency constraints use the syntax
//
//	t1[status] = "working" & t2[status] = "retired" -> t1 <[status] t2
//	t1 <[status] t2 -> t1 <[AC] t2
//
// and constant CFDs
//
//	AC = "212" => city = "NY"
func NewSpec(in *Instance, currency []string, cfds []string) (*Spec, error) {
	sch := in.Schema()
	var sigma []constraint.Currency
	for _, s := range currency {
		c, err := constraint.ParseCurrency(sch, s)
		if err != nil {
			return nil, err
		}
		sigma = append(sigma, c)
	}
	var gamma []constraint.CFD
	for _, s := range cfds {
		c, err := constraint.ParseCFD(sch, s)
		if err != nil {
			return nil, err
		}
		gamma = append(gamma, c)
	}
	m := model.NewSpec(model.NewTemporal(in), sigma, gamma)
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &Spec{m: m}, nil
}

// AddOrder records the explicit currency edge t1 ≼_attr t2 ("t2 is at least
// as current as t1 in attr").
func (s *Spec) AddOrder(attr string, t1, t2 TupleID) error {
	a, ok := s.m.Schema().Attr(attr)
	if !ok {
		return fmt.Errorf("conflictres: unknown attribute %q", attr)
	}
	return s.m.TI.AddOrder(a, t1, t2)
}

// Schema returns the specification's schema.
func (s *Spec) Schema() *Schema { return s.m.Schema() }

// Instance returns the underlying entity instance.
func (s *Spec) Instance() *Instance { return s.m.TI.Inst }

// LoadSpec reads a specification from the textio file format.
func LoadSpec(r io.Reader) (*Spec, error) {
	m, err := textio.ReadSpec(r)
	if err != nil {
		return nil, err
	}
	return &Spec{m: m}, nil
}

// LoadSpecFile reads a specification from a file.
func LoadSpecFile(path string) (*Spec, error) {
	m, err := textio.LoadSpecFile(path)
	if err != nil {
		return nil, err
	}
	return &Spec{m: m}, nil
}

// Save writes the specification in the textio file format.
func (s *Spec) Save(w io.Writer) error { return textio.WriteSpec(w, s.m) }

// Options tunes Resolve.
type Options struct {
	// Mode selects the resolution strategy and trust overlay; the zero value
	// is the SAT framework with the specification's own trust mapping.
	Mode ResolutionMode
	// MaxRounds bounds interaction rounds (default 8).
	MaxRounds int
	// UseNaiveDeduce switches to the exact per-variable deduction baseline.
	UseNaiveDeduce bool
	// FromScratch disables the incremental session engine and re-encodes
	// the specification every round; for ablation benchmarks and
	// differential testing.
	FromScratch bool
	// Unpooled disables cross-entity pipeline reuse (encoding skeleton +
	// solver pooling) in the batch and dataset paths, constructing every
	// entity's encoding and solver from zero; for ablation benchmarks and
	// differential testing. Identical results either way.
	Unpooled bool
}

// Result is the outcome of resolving one entity.
type Result struct {
	// Valid is false when the specification has no valid completion; all
	// other fields are then empty.
	Valid bool
	// Tuple is the resolved current tuple (null where undetermined).
	Tuple Tuple
	// Resolved maps each determined attribute to its true value.
	Resolved map[Attr]Value
	// Rounds and Interactions count framework iterations and rounds with
	// user input.
	Rounds       int
	Interactions int
	// Suggestions are the per-round requests issued to the oracle.
	Suggestions []Suggestion
	// Timing aggregates per-phase elapsed time.
	Timing Timing
	// Session reports the resolution engine's solver-reuse counters (zero
	// when Options.FromScratch bypassed the session engine).
	Session SessionStats

	schema *Schema
}

// Complete reports whether every attribute was determined.
func (r *Result) Complete() bool {
	return r.Valid && len(r.Resolved) == r.schema.Len()
}

// Value returns the resolved value of the named attribute as a string, or
// "" when the attribute is unresolved or unknown.
func (r *Result) Value(attr string) string {
	a, ok := r.schema.Attr(attr)
	if !ok {
		return ""
	}
	v, ok := r.Resolved[a]
	if !ok {
		return ""
	}
	return v.String()
}

// Resolve runs the conflict-resolution framework: validity checking, joint
// currency/consistency deduction, and — when an oracle is supplied —
// suggestion generation and user interaction until the true tuple is found
// or input is exhausted. A nil oracle performs a single automatic pass.
func Resolve(spec *Spec, oracle Oracle, opts ...Options) (*Result, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	return resolveWith(spec, oracle, o, nil)
}

// resolveWith runs the core framework, optionally on a pooled pipeline. The
// resolution mode is applied here, so every path — single, batch, dataset,
// pooled or not — shares one semantics: the trust overlay is merged into the
// specification, and a non-SAT strategy takes its closed-form fast path when
// the entity is constraint-free (falling back to the framework otherwise).
func resolveWith(spec *Spec, oracle Oracle, o Options, pipe *core.Pipeline) (*Result, error) {
	m, err := o.Mode.effectiveSpec(spec.m)
	if err != nil {
		return nil, err
	}
	if res, ok := fastResolve(m, o.Mode.Strategy); ok {
		return res, nil
	}
	out, err := core.Resolve(m, oracle, core.Options{
		MaxRounds:      o.MaxRounds,
		UseNaiveDeduce: o.UseNaiveDeduce,
		FromScratch:    o.FromScratch,
		Pipeline:       pipe,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Valid:        out.Valid,
		Tuple:        out.Tuple,
		Resolved:     out.Resolved,
		Rounds:       out.Rounds,
		Interactions: out.Interactions,
		Suggestions:  out.Suggestions,
		Timing:       out.Timing,
		Session:      out.Session,
		schema:       spec.Schema(),
	}, nil
}

// Validate reports whether the specification is valid, i.e. whether some
// completion of its currency orders satisfies all constraints.
func Validate(spec *Spec) bool {
	sess := core.NewSession(spec.m, encode.Options{})
	ok, _ := sess.IsValid()
	return ok
}

// Deduce runs one non-interactive deduction pass and returns the true
// values determined so far, keyed by attribute name. Validity checking and
// deduction share one incremental solver.
func Deduce(spec *Spec) (map[string]Value, error) {
	sess := core.NewSession(spec.m, encode.Options{})
	if ok, _ := sess.IsValid(); !ok {
		return nil, fmt.Errorf("conflictres: specification is invalid")
	}
	od, ok := sess.DeduceOrder()
	if !ok {
		return nil, fmt.Errorf("conflictres: specification is invalid")
	}
	sch := spec.Schema()
	out := make(map[string]Value)
	for a, v := range core.TrueValues(sess.Encoding(), od) {
		out[sch.Name(a)] = v
	}
	return out, nil
}

// SuggestOnce computes the attribute set a user should confirm next, with
// candidate values, without applying any input. All phases share one
// incremental solver.
func SuggestOnce(spec *Spec) (Suggestion, error) {
	sess := core.NewSession(spec.m, encode.Options{})
	if ok, _ := sess.IsValid(); !ok {
		return Suggestion{}, fmt.Errorf("conflictres: specification is invalid")
	}
	od, ok := sess.DeduceOrder()
	if !ok {
		return Suggestion{}, fmt.Errorf("conflictres: specification is invalid")
	}
	resolved := core.TrueValues(sess.Encoding(), od)
	return sess.Suggest(od, resolved), nil
}

// Explain diagnoses an invalid specification: it returns a human-readable
// description of a subset-minimal set of conflicting constraints, or ok =
// false when the specification is actually valid.
func Explain(spec *Spec) (string, bool) {
	enc := encode.Build(spec.m, encode.Options{})
	conf, ok := core.Diagnose(enc)
	if !ok {
		return "", false
	}
	return conf.Format(enc), true
}

// Model exposes the internal specification for advanced integrations inside
// this module (the cmd tools); external users should not need it.
func (s *Spec) Model() *model.Spec { return s.m }
